"""Unit tests for the execution engine (baseline-tier semantics and costs)."""

import pytest

from repro.aos.cost_accounting import APP, COMPILATION, CostAccounting
from repro.compiler.code_cache import CodeCache
from repro.jvm.costs import CostModel
from repro.jvm.errors import ExecutionError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.interpreter import MAX_STACK_DEPTH, Machine
from repro.jvm.program import (Add, Arg, Const, If, Let, Local, Loop, Mod,
                               Mul, New, NewPool, Pick, Return, StaticCall,
                               Sub, VirtualCall, Work)
from repro.jvm.values import Instance
from repro.workloads.builder import ProgramBuilder

from conftest import build_diamond_program


def machine_for(program, costs=None, tick=None):
    costs = costs or CostModel()
    hierarchy = ClassHierarchy(program)
    cache = CodeCache(costs)
    return Machine(program, hierarchy, cache, costs,
                   CostAccounting(), tick)


def run_main(body, costs=None, classes=(), extra_methods=None):
    """Build a one-method program and execute it."""
    b = ProgramBuilder("t")
    for name in classes:
        b.cls(name)
    b.cls("Main")
    if extra_methods:
        extra_methods(b)
    b.static_method("Main", "main", body, params=0, locals_=10)
    b.entry("Main.main")
    program = b.build()
    m = machine_for(program, costs)
    value = m.run()
    return m, value


class TestBasicSemantics:
    def test_return_value(self):
        _m, value = run_main([Return(Const(42))])
        assert value == 42

    def test_fallthrough_returns_zero(self):
        _m, value = run_main([Work(1)])
        assert value == 0

    def test_bare_return_is_zero(self):
        _m, value = run_main([Return()])
        assert value == 0

    def test_let_and_locals(self):
        _m, value = run_main([Let(0, Const(5)), Return(Local(0))])
        assert value == 5

    def test_arithmetic(self):
        expr = Add(Mul(Const(3), Const(4)), Sub(Const(10), Const(7)))
        _m, value = run_main([Return(expr)])
        assert value == 15

    def test_mod(self):
        _m, value = run_main([Return(Mod(Const(17), Const(5)))])
        assert value == 2

    def test_if_then(self):
        _m, value = run_main([If(Const(1), [Return(Const(1))],
                                 [Return(Const(2))])])
        assert value == 1

    def test_if_else(self):
        _m, value = run_main([If(Const(0), [Return(Const(1))],
                                 [Return(Const(2))])])
        assert value == 2

    def test_loop_index_variable(self):
        # Sum of 0..4 = 10 accumulated through a local.
        body = [
            Let(1, Const(0)),
            Loop(Const(5), 0, [Let(1, Add(Local(1), Local(0)))]),
            Return(Local(1)),
        ]
        _m, value = run_main(body)
        assert value == 10

    def test_loop_early_return(self):
        body = [Loop(Const(100), 0,
                     [If(Local(0), [Return(Local(0))], [])]),
                Return(Const(-1))]
        _m, value = run_main(body)
        assert value == 1

    def test_new_creates_instance(self):
        b = ProgramBuilder("t")
        b.cls("K")
        b.cls("Main")
        b.static_method("Main", "main",
                        [New(0, "K"), Return(Local(0))], locals_=2)
        b.entry("Main.main")
        m = machine_for(b.build())
        value = m.run()
        assert isinstance(value, Instance)
        assert value.klass == "K"

    def test_pool_pick_wraps_around(self):
        b = ProgramBuilder("t")
        b.cls("A")
        b.cls("B")
        b.cls("Main")
        b.static_method("Main", "main", [
            NewPool(0, ("A", "B")),
            Let(1, Pick(Local(0), Const(3))),  # 3 % 2 == 1 -> B
            Return(Local(1)),
        ], locals_=3)
        b.entry("Main.main")
        value = machine_for(b.build()).run()
        assert value.klass == "B"

    def test_pick_from_non_pool_raises(self):
        with pytest.raises(ExecutionError):
            run_main([Let(0, Const(3)),
                      Let(1, Pick(Local(0), Const(0)))])


class TestCalls:
    def test_static_call_result(self):
        def extra(b):
            b.static_method("Main", "five", [Return(Const(5))])
        _m, value = run_main(
            [StaticCall(0, "Main.five", dst=0), Return(Local(0))],
            extra_methods=extra)
        assert value == 5

    def test_static_call_args(self):
        def extra(b):
            b.static_method("Main", "addone",
                            [Return(Add(Arg(0), Const(1)))], params=1)
        _m, value = run_main(
            [StaticCall(0, "Main.addone", [Const(6)], dst=0),
             Return(Local(0))],
            extra_methods=extra)
        assert value == 7

    def test_virtual_dispatch_selects_dynamic_class(self):
        program, _sites = build_diamond_program(iterations=1)
        value = machine_for(program).run()
        assert value == 2  # B.ping returns 2

    def test_virtual_on_non_object_raises(self):
        b = ProgramBuilder("t")
        b.cls("K")
        b.cls("Main")
        b.method("K", "m", [Return(Const(0))], params=1)
        b.static_method("Main", "main",
                        [VirtualCall(0, "m", Const(3))], locals_=2)
        b.entry("Main.main")
        with pytest.raises(ExecutionError):
            machine_for(b.build()).run()

    def test_stack_overflow_detected(self):
        b = ProgramBuilder("t")
        b.cls("Main")
        b.static_method("Main", "loop",
                        [StaticCall(0, "Main.loop"), Return(Const(0))])
        b.static_method("Main", "main",
                        [StaticCall(1, "Main.loop"), Return(Const(0))])
        b.entry("Main.main")
        with pytest.raises(ExecutionError):
            machine_for(b.build()).run()

    def test_call_counts(self):
        program, _sites = build_diamond_program(iterations=3)
        m = machine_for(program)
        m.run()
        # main + 3x run + 6 dispatched pings
        assert m.stats.calls == 1 + 3 + 6
        assert m.stats.virtual_calls == 6
        assert m.stats.dispatches == 6


class TestCostAccounting:
    def test_work_charged_at_baseline_multiplier(self):
        costs = CostModel()
        m, _ = run_main([Work(100)], costs=costs)
        app = m.accounting.cycles[APP]
        assert app == pytest.approx(100 * costs.baseline_exec_mult)

    def test_baseline_compile_charged_once(self):
        costs = CostModel()
        def extra(b):
            b.static_method("Main", "callee", [Return(Const(0))])
        m, _ = run_main(
            [StaticCall(0, "Main.callee", dst=0),
             StaticCall(1, "Main.callee", dst=0),
             Return(Const(0))],
            costs=costs, extra_methods=extra)
        callee_bc = m.program.method("Main.callee").bytecodes
        main_bc = m.program.method("Main.main").bytecodes
        expected = (callee_bc + main_bc) * costs.baseline_compile_cycles_per_bc
        assert m.accounting.cycles[COMPILATION] == pytest.approx(expected)
        assert m.code_cache.baseline_compiled_methods == 2

    def test_call_overhead_charged(self):
        costs = CostModel()
        def extra(b):
            b.static_method("Main", "callee", [Return(Const(0))])
        m, _ = run_main([StaticCall(0, "Main.callee")], costs=costs,
                        extra_methods=extra)
        # Two Work-free methods: APP cycles == one call overhead (scaled).
        assert m.accounting.cycles[APP] == pytest.approx(
            costs.call_overhead * costs.baseline_exec_mult)

    def test_virtual_dispatch_costs_more_than_static(self):
        program, _ = build_diamond_program(iterations=1)
        m = machine_for(program)
        m.run()
        assert m.stats.dispatches == 2

    def test_clock_matches_accounting_total(self):
        program, _ = build_diamond_program(iterations=5)
        m = machine_for(program)
        m.run()
        assert m.clock == pytest.approx(m.accounting.total)


class TestTicks:
    def test_tick_fires_when_clock_crosses(self):
        fired = []

        def tick(machine):
            fired.append(machine.clock)
            machine.next_event = float("inf")

        program, _ = build_diamond_program(iterations=50)
        m = machine_for(program, tick=tick)
        m.next_event = 50.0
        m.run()
        assert len(fired) == 1
        assert fired[0] >= 50.0

    def test_tick_not_reentrant(self):
        depth = {"now": 0, "max": 0}

        def tick(machine):
            depth["now"] += 1
            depth["max"] = max(depth["max"], depth["now"])
            # Charging inside the tick must not recurse into the handler.
            machine.charge(APP, 1000.0)
            machine.next_event = machine.clock + 10.0
            depth["now"] -= 1

        program, _ = build_diamond_program(iterations=50)
        m = machine_for(program, tick=tick)
        m.next_event = 10.0
        m.run()
        assert depth["max"] == 1

    def test_deterministic_execution(self):
        program1, _ = build_diamond_program(iterations=20)
        program2, _ = build_diamond_program(iterations=20)
        m1, m2 = machine_for(program1), machine_for(program2)
        m1.run()
        m2.run()
        assert m1.clock == m2.clock
        assert m1.stats.calls == m2.stats.calls
