"""Unit tests for the static-oracle baseline policy."""

from repro.analysis.callgraph import CHA, RTA, build_call_graph
from repro.analysis.static_oracle import StaticOracle
from repro.compiler.compiled_method import GUARDED
from repro.compiler.opt_compiler import OptCompiler
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (Arg, Const, Local, Loop, New, Return,
                               StaticCall, VirtualCall, Work)
from repro.policies import StaticOraclePolicy, make_policy
from repro.provenance.reasons import GUARD_METHOD_TEST, ReasonCode
from repro.workloads.builder import ProgramBuilder


def make_oracle(program, precision=RTA, costs=None):
    costs = costs or CostModel()
    hierarchy = ClassHierarchy(program)
    graph = build_call_graph(program, precision=precision, costs=costs)
    return StaticOracle(program, hierarchy, costs, graph), costs


def decide_at(program, root_id, site, precision=RTA, current_size=None):
    """Run the oracle on one call site of ``root_id``'s body."""
    oracle, _costs = make_oracle(program, precision)
    root = program.method(root_id)
    stmt = next(s for s in _walk_calls(root.body) if s.site == site)
    if current_size is None:
        current_size = root.bytecodes
    return oracle.decide(stmt, ((root_id, site),), depth=0,
                         current_size=current_size, root=root)


def _walk_calls(body):
    from repro.compiler.opt_compiler import iter_call_sites
    return iter_call_sites(body)


def build_bound_program(cold=False):
    """Static calls only: a tiny callee and a medium callee.

    With ``cold`` a 300-trip loop around the tiny call dwarfs the medium
    site's share of total static frequency, pushing it below the
    hot-edge threshold.
    """
    b = ProgramBuilder("bound-cold" if cold else "bound-hot")
    b.cls("C")
    b.method("C", "tiny", [Work(4), Return(Const(0))], params=0, static=True)
    b.method("C", "med", [Work(50), Return(Const(0))], params=0, static=True)
    tiny_site, med_site = b.site(), b.site()
    tiny_call = StaticCall(tiny_site, "C.tiny", dst=1)
    body = [Loop(Const(300), 0, [tiny_call])] if cold else [tiny_call]
    b.method("C", "root", body + [
        StaticCall(med_site, "C.med", dst=1),
        Return(Const(0)),
    ], params=0, static=True, locals_=4)
    main_site = b.site()
    b.static_method("C", "main", [
        StaticCall(main_site, "C.root", dst=0),
        Return(Local(0)),
    ])
    b.entry("C.main")
    return b.build(), {"tiny": tiny_site, "med": med_site}


def build_virtual_program(allocate_both=True, sole_impl=False):
    """One virtual site; receiver classes vary by flag.

    * ``sole_impl``: only S1 implements the selector (CHA binds it).
    * ``allocate_both``: both S1 and S2 are instantiated (RTA-polymorphic)
      versus only S1 (RTA-monomorphic, CHA-polymorphic).
    """
    b = ProgramBuilder("virt")
    b.cls("Sub")
    b.cls("S1", superclass="Sub")
    b.cls("S2", superclass="Sub")
    b.method("S1", "act", [Work(3), Return(Const(1))], params=1)
    if not sole_impl:
        b.method("S2", "act", [Work(3), Return(Const(2))], params=1)
    b.cls("C")
    act_site = b.site()
    b.method("C", "root", [
        VirtualCall(act_site, "act", Arg(0), dst=0),
        Return(Local(0)),
    ], params=1, static=True, locals_=4)
    root_site = b.site()
    main_body = [New(0, "S1")]
    if allocate_both:
        main_body.append(New(1, "S2"))
    main_body += [
        StaticCall(root_site, "C.root", [Local(0)], dst=2),
        Return(Local(2)),
    ]
    b.static_method("C", "main", main_body, locals_=4)
    b.entry("C.main")
    return b.build(), act_site


class TestBoundDecisions:
    def test_tiny_callee_inlines(self):
        program, sites = build_bound_program()
        decision = decide_at(program, "C.root", sites["tiny"])
        assert decision.inline and not decision.guarded
        assert decision.reason == ReasonCode.TINY.value

    def test_statically_hot_medium_inlines(self):
        program, sites = build_bound_program(cold=False)
        decision = decide_at(program, "C.root", sites["med"])
        assert decision.inline
        assert decision.reason == ReasonCode.STATIC_HOT.value
        assert decision.weight is not None and decision.weight > 0

    def test_statically_cold_medium_refused(self):
        program, sites = build_bound_program(cold=True)
        decision = decide_at(program, "C.root", sites["med"])
        assert not decision.inline
        assert decision.reason == ReasonCode.STATIC_COLD.value

    def test_cold_site_weight_below_threshold(self):
        program, sites = build_bound_program(cold=True)
        oracle, costs = make_oracle(program)
        assert oracle._graph.site_weight(sites["med"]) < \
            costs.hot_edge_threshold


class TestVirtualDecisions:
    def test_polymorphic_site_refused(self):
        program, site = build_virtual_program(allocate_both=True)
        decision = decide_at(program, "C.root", site)
        assert not decision.inline
        assert decision.reason == ReasonCode.STATIC_POLY.value

    def test_rta_singleton_inlines_behind_method_test(self):
        program, site = build_virtual_program(allocate_both=False)
        decision = decide_at(program, "C.root", site)
        assert decision.inline and decision.guarded
        assert [t.id for t in decision.targets] == ["S1.act"]
        assert decision.guard_kind == GUARD_METHOD_TEST

    def test_cha_precision_sees_singleton_as_polymorphic(self):
        # At CHA precision the unallocated S2.act is still a target, so
        # the graph gives the oracle no grounds to devirtualize.
        program, site = build_virtual_program(allocate_both=False)
        decision = decide_at(program, "C.root", site, precision=CHA)
        assert not decision.inline
        assert decision.reason == ReasonCode.STATIC_POLY.value

    def test_sole_implementation_binds_without_guard(self):
        program, site = build_virtual_program(sole_impl=True)
        decision = decide_at(program, "C.root", site)
        assert decision.inline and not decision.guarded
        assert decision.reason == ReasonCode.TINY.value


class TestCompiledTree:
    def test_full_compile_shape(self):
        program, site = build_virtual_program(allocate_both=False)
        costs = CostModel()
        hierarchy = ClassHierarchy(program)
        graph = build_call_graph(program, precision=RTA, costs=costs)
        oracle = StaticOracle(program, hierarchy, costs, graph)
        compiled = OptCompiler(program, hierarchy, costs).compile(
            program.method("C.root"), oracle, version=1)
        decision = compiled.root.decisions[site]
        assert decision.kind == GUARDED
        assert decision.targets() == ["S1.act"]

    def test_poly_site_left_as_dispatch(self):
        program, site = build_virtual_program(allocate_both=True)
        costs = CostModel()
        hierarchy = ClassHierarchy(program)
        graph = build_call_graph(program, precision=RTA, costs=costs)
        oracle = StaticOracle(program, hierarchy, costs, graph)
        compiled = OptCompiler(program, hierarchy, costs).compile(
            program.method("C.root"), oracle, version=1)
        assert site not in compiled.root.decisions


class TestPolicyIntegration:
    def test_make_policy_builds_static_policy(self):
        policy = make_policy("static")
        assert isinstance(policy, StaticOraclePolicy)
        assert policy.label == "static"

    def test_make_oracle_returns_static_oracle_and_caches_graph(self):
        program, _site = build_virtual_program()
        policy = make_policy("static")
        hierarchy = ClassHierarchy(program)
        costs = CostModel()
        oracle1 = policy.make_oracle(program, hierarchy, costs)
        oracle2 = policy.make_oracle(program, hierarchy, costs)
        assert isinstance(oracle1, StaticOracle)
        assert oracle1._graph is oracle2._graph

    def test_run_single_with_static_family(self):
        from repro.experiments.runner import run_single
        result = run_single("compress", "static", 1, scale=0.05)
        assert result.total_cycles > 0
        assert result.opt_compilations > 0

    def test_static_runs_deterministically(self):
        from repro.experiments.runner import run_single
        a = run_single("db", "static", 1, scale=0.05)
        b = run_single("db", "static", 1, scale=0.05)
        assert a.total_cycles == b.total_cycles
        assert a.opt_code_bytes == b.opt_code_bytes


class TestSweepCell:
    def test_static_family_through_sweep(self):
        from repro.experiments.config import SweepConfig
        from repro.experiments.runner import run_sweep
        config = SweepConfig(benchmarks=("compress",), families=("static",),
                             depths=(1,), phases=(0.0,), scale=0.05, jobs=1)
        results = run_sweep(config)
        assert results.failures == {}
        assert results.result("compress", "static", 1).total_cycles > 0
        # Baseline cell runs alongside, so the Figure-4 query works.
        assert isinstance(
            results.speedup_percent("compress", "static", 1), float)
