"""Unit tests for Equation-3 partial context matching and the
intersection-of-target-sets candidate algorithm (paper Section 3.3)."""

from repro.profiles.partial_match import (applicable_rules, candidate_targets,
                                          contexts_compatible,
                                          ordered_candidates, rules_for_site)
from repro.profiles.trace import InlineRule, TraceKey


def rule(callee, *pairs, weight=10.0, share=0.02):
    return InlineRule(TraceKey(callee, tuple(pairs)), weight, share)


class TestContextsCompatible:
    def test_identical(self):
        ctx = (("C", 1), ("B", 2))
        assert contexts_compatible(ctx, ctx)

    def test_rule_deeper_than_compilation(self):
        # Profile data often has more context than available at the site.
        assert contexts_compatible((("C", 1), ("B", 2), ("A", 3)),
                                   (("C", 1),))

    def test_compilation_deeper_than_rule(self):
        assert contexts_compatible((("C", 1),),
                                   (("C", 1), ("B", 2), ("A", 3)))

    def test_mismatch_at_level_one(self):
        assert not contexts_compatible((("C", 1),), (("C", 2),))
        assert not contexts_compatible((("C", 1),), (("X", 1),))

    def test_mismatch_at_deeper_level(self):
        assert not contexts_compatible((("C", 1), ("B", 2)),
                                       (("C", 1), ("B", 9)))

    def test_only_overlap_levels_compared(self):
        # Divergence beyond min(k, j) is invisible to Eq. 3.
        assert contexts_compatible((("C", 1), ("B", 2)),
                                   (("C", 1), ("B", 2), ("Z", 9)))


class TestDegenerateContexts:
    """Edge cases at the boundaries of Equation 3's min(k, j) overlap."""

    def test_empty_rule_context_matches_any_compilation_context(self):
        # A depth-0 rule constrains nothing: the overlap is empty, so
        # compatibility is vacuous regardless of compilation depth.
        assert contexts_compatible((), (("C", 1), ("B", 2), ("A", 3)))
        assert contexts_compatible((), ())

    def test_empty_compilation_context_matches_any_rule(self):
        assert contexts_compatible((("C", 1), ("B", 2), ("A", 3)), ())

    def test_compatibility_symmetric_on_the_overlap(self):
        # Eq. 3 only inspects the shared prefix, so swapping the rule and
        # compilation sides can never change the verdict.
        shallow = (("C", 1),)
        deep_match = (("C", 1), ("B", 2), ("A", 3))
        deep_clash = (("C", 2), ("B", 2))
        assert contexts_compatible(deep_match, shallow) == \
            contexts_compatible(shallow, deep_match) is True
        assert contexts_compatible(deep_clash, shallow) == \
            contexts_compatible(shallow, deep_clash) is False


class TestApplicableRules:
    def test_filters_by_compatibility(self):
        rules = [rule("D", ("C", 1), ("B", 2)),
                 rule("D", ("C", 1), ("X", 3)),
                 rule("D", ("C", 9))]
        applicable = applicable_rules(rules, (("C", 1), ("B", 2)))
        assert len(applicable) == 1
        assert applicable[0].context == (("C", 1), ("B", 2))

    def test_depth1_rules_apply_to_any_matching_site(self):
        rules = [rule("D", ("C", 1))]
        assert applicable_rules(rules, (("C", 1), ("B", 2), ("A", 3)))


class TestCandidateTargets:
    def test_empty_rules(self):
        assert candidate_targets([], (("C", 1),)) == {}

    def test_single_group_returns_its_targets(self):
        rules = [rule("D1", ("C", 1)), rule("D2", ("C", 1))]
        candidates = candidate_targets(rules, (("C", 1),))
        assert set(candidates) == {"D1", "D2"}

    def test_intersection_across_groups(self):
        # Two context groups; only D1 is hot in both.
        rules = [rule("D1", ("C", 1), ("B", 2)),
                 rule("D1", ("C", 1), ("A", 3)),
                 rule("D2", ("C", 1), ("B", 2))]
        candidates = candidate_targets(rules, (("C", 1),))
        assert set(candidates) == {"D1"}

    def test_disjoint_groups_empty_intersection(self):
        # The HashMap example compiled at an ambiguous root: each context
        # predicts a different target, so nothing is predicted.
        rules = [rule("MyKey.hashCode", ("get", 1), ("runTest", 10)),
                 rule("Object.hashCode", ("get", 1), ("runTest", 11))]
        assert candidate_targets(rules, (("get", 1),)) == {}

    def test_specific_context_selects_one_group(self):
        rules = [rule("MyKey.hashCode", ("get", 1), ("runTest", 10)),
                 rule("Object.hashCode", ("get", 1), ("runTest", 11))]
        candidates = candidate_targets(
            rules, (("get", 1), ("runTest", 10)))
        assert set(candidates) == {"MyKey.hashCode"}

    def test_incompatible_context_no_candidates(self):
        rules = [rule("D", ("C", 1), ("B", 2))]
        assert candidate_targets(rules, (("C", 1), ("Z", 5))) == {}

    def test_weights_summed_across_groups(self):
        rules = [rule("D", ("C", 1), ("B", 2), weight=5.0),
                 rule("D", ("C", 1), ("A", 3), weight=7.0)]
        candidates = candidate_targets(rules, (("C", 1),))
        assert candidates["D"] == 12.0

    def test_deeper_rule_groups_separate(self):
        # Same target through two distinct deep contexts still intersects.
        rules = [rule("D", ("C", 1), ("B", 2), ("A", 3)),
                 rule("D", ("C", 1), ("B", 2), ("X", 4))]
        candidates = candidate_targets(rules, (("C", 1), ("B", 2)))
        assert set(candidates) == {"D"}


class TestHelpers:
    def test_rules_for_site(self):
        rules = [rule("D", ("C", 1)), rule("D", ("C", 2)),
                 rule("D", ("X", 1))]
        selected = rules_for_site(rules, "C", 1)
        assert len(selected) == 1

    def test_ordered_candidates_hottest_first(self):
        ordered = ordered_candidates({"A": 1.0, "B": 5.0, "C": 5.0})
        assert ordered == [("B", 5.0), ("C", 5.0), ("A", 1.0)]

    def test_ordered_candidates_ties_ignore_insertion_order(self):
        # Guard-target order feeds compiled-code layout, so all-tied
        # weights must order identically however the dict was built.
        forward = ordered_candidates({"A": 2.0, "M": 2.0, "X": 2.0})
        backward = ordered_candidates({"X": 2.0, "M": 2.0, "A": 2.0})
        assert forward == backward == [("A", 2.0), ("M", 2.0), ("X", 2.0)]
