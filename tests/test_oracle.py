"""Unit tests for the inline oracle's policy decisions."""

import pytest

from repro.compiler.oracle import (Decision, InlineOracle, RECORDED_REFUSALS,
                                   build_site_trace_index, guard_coverage)
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (Arg, Const, Return, StaticCall, VirtualCall,
                               Work)
from repro.profiles.dcg import DynamicCallGraph
from repro.profiles.trace import InlineRule, TraceKey
from repro.workloads.builder import ProgramBuilder


def build_program():
    """Callees of every size class plus a two-target virtual selector."""
    b = ProgramBuilder("oracle")
    b.cls("C")
    b.cls("Base")
    b.cls("A", superclass="Base")
    b.cls("B", superclass="Base")
    costs = CostModel()

    def sized(name, bytecodes):
        b.method("C", name, [Work(bytecodes - 1), Return(Const(0))],
                 params=1, static=True)

    sized("tiny", costs.tiny_limit - 2)
    sized("small", costs.small_limit - 2)
    sized("medium", costs.medium_limit - 10)
    sized("large", costs.medium_limit + 50)

    b.method("A", "poly", [Work(6), Return(Const(1))], params=1)
    b.method("B", "poly", [Work(6), Return(Const(2))], params=1)
    b.method("C", "solo", [Work(3), Return(Const(3))], params=1)

    b.method("C", "root", [Return(Const(0))], params=0, static=True)
    b.entry("C.root")
    # Root needs a real body size for budgets; fake a caller of size 60.
    b.program.classes["C"].methods["root"].bytecodes = 60
    b.program.validate()
    return b.program, costs


@pytest.fixture
def env():
    program, costs = build_program()
    hierarchy = ClassHierarchy(program)
    return program, hierarchy, costs


def oracle_for(env, rules=(), refusals=None, dcg=None):
    program, hierarchy, costs = env
    return InlineOracle(program, hierarchy, costs, rules,
                        on_refusal=refusals, dcg=dcg)


def static_call(target, site=5, args=()):
    return StaticCall(site, target, args)


def rule_for(callee, *pairs, weight=10.0):
    return InlineRule(TraceKey(callee, tuple(pairs)), weight, 0.05)


ROOT_CTX = (("C.root", 5),)


class TestStaticDecisions:
    def test_tiny_always_inlined(self, env):
        program, _h, _c = env
        oracle = oracle_for(env)
        d = oracle.decide(static_call("C.tiny"), ROOT_CTX, 0, 60,
                          program.method("C.root"))
        assert d.inline and not d.guarded
        assert d.reason == "tiny"

    def test_small_inlined_within_budget(self, env):
        program = env[0]
        oracle = oracle_for(env)
        d = oracle.decide(static_call("C.small"), ROOT_CTX, 0, 60,
                          program.method("C.root"))
        assert d.inline
        assert d.reason == "small"

    def test_small_past_budget_needs_profile(self, env):
        program, _h, costs = env
        oracle = oracle_for(env)
        huge_current = int(60 * costs.space_expansion_factor) + 100
        d = oracle.decide(static_call("C.small"), ROOT_CTX, 0,
                          huge_current, program.method("C.root"))
        assert not d.inline
        assert d.reason == "budget"

    def test_small_past_budget_with_hot_rule_inlined(self, env):
        program, _h, costs = env
        oracle = oracle_for(env, rules=[rule_for("C.small", ("C.root", 5))])
        huge_current = int(60 * costs.space_expansion_factor) + 100
        d = oracle.decide(static_call("C.small"), ROOT_CTX, 0,
                          huge_current, program.method("C.root"))
        assert d.inline
        assert d.reason == "small-hot"

    def test_medium_requires_profile(self, env):
        program = env[0]
        oracle = oracle_for(env)
        d = oracle.decide(static_call("C.medium"), ROOT_CTX, 0, 60,
                          program.method("C.root"))
        assert not d.inline
        assert d.reason == "no_profile"

    def test_medium_with_rule_inlined(self, env):
        program = env[0]
        oracle = oracle_for(env, rules=[rule_for("C.medium", ("C.root", 5))])
        d = oracle.decide(static_call("C.medium"), ROOT_CTX, 0, 60,
                          program.method("C.root"))
        assert d.inline
        assert d.reason == "medium-hot"

    def test_large_never_inlined_and_recorded(self, env):
        program = env[0]
        recorded = []
        oracle = oracle_for(
            env, rules=[rule_for("C.large", ("C.root", 5))],
            refusals=lambda *a: recorded.append(a))
        d = oracle.decide(static_call("C.large"), ROOT_CTX, 0, 60,
                          program.method("C.root"))
        assert not d.inline
        assert d.reason == "large"
        assert recorded == [("C.root", 5, "C.large", "large")]

    def test_depth_cap(self, env):
        program, _h, costs = env
        oracle = oracle_for(env)
        d = oracle.decide(static_call("C.tiny"), ROOT_CTX,
                          costs.max_inline_depth, 60,
                          program.method("C.root"))
        assert not d.inline
        assert d.reason == "depth"

    def test_absolute_cap(self, env):
        program, _h, costs = env
        oracle = oracle_for(env)
        d = oracle.decide(static_call("C.tiny"), ROOT_CTX, 0,
                          costs.absolute_size_cap, program.method("C.root"))
        assert not d.inline
        assert d.reason == "space"

    def test_self_recursion_refused(self, env):
        program = env[0]
        oracle = oracle_for(env)
        d = oracle.decide(static_call("C.root"), ROOT_CTX, 0, 60,
                          program.method("C.root"))
        assert not d.inline
        assert d.reason == "recursive"

    def test_mutual_recursion_via_context_refused(self, env):
        program = env[0]
        oracle = oracle_for(env)
        ctx = (("C.tiny", 9), ("C.root", 5))
        d = oracle.decide(static_call("C.tiny", site=9), ctx, 1, 60,
                          program.method("C.root"))
        assert not d.inline
        assert d.reason == "recursive"

    def test_constant_args_enable_inline(self, env):
        # large is just over the limit... use a method near the boundary.
        program, _h, costs = env
        oracle = oracle_for(env, rules=[rule_for("C.medium", ("C.root", 5))])
        call = static_call("C.medium", args=[Const(1), Const(2)])
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert d.inline


class TestVirtualDecisions:
    def test_cha_sole_implementation_direct(self, env):
        program = env[0]
        oracle = oracle_for(env)
        call = VirtualCall(5, "solo", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert d.inline and not d.guarded
        assert d.targets[0].id == "C.solo"

    def test_polymorphic_without_profile_not_inlined(self, env):
        program = env[0]
        oracle = oracle_for(env)
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert not d.inline
        assert d.reason == "no_profile"

    def test_polymorphic_with_rules_guarded(self, env):
        program = env[0]
        oracle = oracle_for(env, rules=[rule_for("A.poly", ("C.root", 5)),
                                        rule_for("B.poly", ("C.root", 5))])
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert d.inline and d.guarded
        assert sorted(t.id for t in d.targets) == ["A.poly", "B.poly"]

    def test_guarded_targets_ordered_by_weight(self, env):
        program = env[0]
        oracle = oracle_for(env, rules=[
            rule_for("A.poly", ("C.root", 5), weight=1.0),
            rule_for("B.poly", ("C.root", 5), weight=9.0)])
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert d.targets[0].id == "B.poly"

    def test_context_selects_single_target(self, env):
        program = env[0]
        oracle = oracle_for(env, rules=[
            rule_for("A.poly", ("C.root", 5), ("X", 1)),
            rule_for("B.poly", ("C.root", 5), ("Y", 2))])
        call = VirtualCall(5, "poly", Arg(0))
        ctx = (("C.root", 5), ("X", 1))
        d = oracle.decide(call, ctx, 0, 60, program.method("C.root"))
        assert d.inline
        assert [t.id for t in d.targets] == ["A.poly"]

    def test_ambiguous_root_intersection_empty(self, env):
        program = env[0]
        oracle = oracle_for(env, rules=[
            rule_for("A.poly", ("C.root", 5), ("X", 1)),
            rule_for("B.poly", ("C.root", 5), ("Y", 2))])
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert not d.inline

    def test_max_guarded_targets_cap(self, env):
        program, hierarchy, costs = env
        tight = costs.replace(max_guarded_targets=1)
        oracle = InlineOracle(program, hierarchy, tight,
                              [rule_for("A.poly", ("C.root", 5), weight=9.0),
                               rule_for("B.poly", ("C.root", 5), weight=1.0)])
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert d.inline
        assert [t.id for t in d.targets] == ["A.poly"]


class TestGuardCoverage:
    def _dcg_with_tail(self):
        """A site where the hot target covers only half the dispatches."""
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("A.poly", (("C.root", 5),)), 10.0)
        dcg.add(TraceKey("B.poly", (("C.root", 5),)), 10.0)
        return dcg

    def test_low_coverage_refused(self, env):
        program = env[0]
        # Only A.poly is a rule, but B.poly receives half the dispatches.
        oracle = oracle_for(env, rules=[rule_for("A.poly", ("C.root", 5))],
                            dcg=self._dcg_with_tail())
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert not d.inline
        assert d.reason == "unskewed"

    def test_full_coverage_accepted(self, env):
        program = env[0]
        oracle = oracle_for(env, rules=[rule_for("A.poly", ("C.root", 5)),
                                        rule_for("B.poly", ("C.root", 5))],
                            dcg=self._dcg_with_tail())
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert d.inline

    def test_contextual_coverage_uses_matching_traces_only(self, env):
        program = env[0]
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("A.poly", (("C.root", 5), ("X", 1))), 10.0)
        dcg.add(TraceKey("B.poly", (("C.root", 5), ("Y", 2))), 10.0)
        oracle = oracle_for(
            env, rules=[rule_for("A.poly", ("C.root", 5), ("X", 1))],
            dcg=dcg)
        call = VirtualCall(5, "poly", Arg(0))
        ctx = (("C.root", 5), ("X", 1))
        d = oracle.decide(call, ctx, 0, 60, program.method("C.root"))
        assert d.inline  # within context X the single target covers 100%

    def test_no_dcg_disables_test(self, env):
        program = env[0]
        oracle = oracle_for(env, rules=[rule_for("A.poly", ("C.root", 5))])
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert d.inline


class TestCoverageHelpers:
    """Edge cases for build_site_trace_index and guard_coverage."""

    def test_empty_dcg_yields_empty_index(self):
        assert build_site_trace_index(DynamicCallGraph()) == {}

    def test_index_groups_by_innermost_edge(self):
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("A.poly", (("C.root", 5),)), 3.0)
        dcg.add(TraceKey("B.poly", (("C.root", 5), ("X", 1))), 2.0)
        dcg.add(TraceKey("A.poly", (("C.other", 9),)), 1.0)
        index = build_site_trace_index(dcg)
        assert set(index) == {("C.root", 5), ("C.other", 9)}
        assert len(index[("C.root", 5)]) == 2

    def test_single_trace_full_coverage(self):
        dcg = DynamicCallGraph()
        key = TraceKey("A.poly", (("C.root", 5),))
        dcg.add(key, 7.0)
        traces = build_site_trace_index(dcg)[("C.root", 5)]
        assert guard_coverage(traces, ROOT_CTX, {"A.poly"}) == 1.0
        assert guard_coverage(traces, ROOT_CTX, {"B.poly"}) == 0.0

    def test_no_applicable_traces_defaults_to_full_coverage(self):
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("A.poly", (("C.root", 5), ("X", 1))), 5.0)
        traces = build_site_trace_index(dcg)[("C.root", 5)]
        # Compiling within context Y: the X-trace is Eq.-3 incompatible,
        # so nothing contradicts the choice.
        assert guard_coverage(traces, (("C.root", 5), ("Y", 2)),
                              {"B.poly"}) == 1.0

    def test_coverage_exactly_at_threshold_accepted(self, env):
        program, _hierarchy, costs = env
        dcg = DynamicCallGraph()
        # A.poly covers exactly guard_coverage_min of the dispatch weight.
        dcg.add(TraceKey("A.poly", (("C.root", 5),)),
                10.0 * costs.guard_coverage_min)
        dcg.add(TraceKey("B.poly", (("C.root", 5),)),
                10.0 * (1.0 - costs.guard_coverage_min))
        oracle = oracle_for(env, rules=[rule_for("A.poly", ("C.root", 5))],
                            dcg=dcg)
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert d.inline  # >= threshold passes; only strictly-below refuses
        assert d.coverage == pytest.approx(costs.guard_coverage_min)

    def test_coverage_just_below_threshold_refused(self, env):
        program, _hierarchy, costs = env
        below = costs.guard_coverage_min - 0.01
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("A.poly", (("C.root", 5),)), 10.0 * below)
        dcg.add(TraceKey("B.poly", (("C.root", 5),)), 10.0 * (1.0 - below))
        oracle = oracle_for(env, rules=[rule_for("A.poly", ("C.root", 5))],
                            dcg=dcg)
        call = VirtualCall(5, "poly", Arg(0))
        d = oracle.decide(call, ROOT_CTX, 0, 60, program.method("C.root"))
        assert not d.inline
        assert d.reason == "unskewed"
        assert d.coverage == pytest.approx(below)


class TestDecisionType:
    def test_decision_repr(self):
        # The repr is a stable string derived from verdict + reason code.
        assert repr(Decision.no("depth")) == "<Decision refused:depth>"
        assert (repr(Decision.guarded_inline(()))
                == "<Decision guarded:profile []>")

    def test_decision_repr_direct(self, env):
        program = env[0]
        tiny = program.method("C.tiny")
        assert (repr(Decision.direct(tiny, "tiny"))
                == "<Decision direct:tiny [C.tiny]>")

    def test_decision_verdict(self, env):
        program = env[0]
        tiny = program.method("C.tiny")
        assert Decision.no("depth").verdict == "refused"
        assert Decision.direct(tiny, "tiny").verdict == "direct"
        assert Decision.guarded_inline([tiny]).verdict == "guarded"

    def test_reason_is_normalized_to_plain_string(self):
        from repro.provenance import ReasonCode
        d = Decision.no(ReasonCode.DEPTH)
        assert type(d.reason) is str
        assert d.reason == "depth"

    def test_non_call_statement_rejected(self, env):
        program = env[0]
        oracle = oracle_for(env)
        with pytest.raises(TypeError):
            oracle.decide(Work(1), ROOT_CTX, 0, 60,
                          program.method("C.root"))

    def test_recorded_refusal_reasons_are_durable(self):
        assert set(RECORDED_REFUSALS) == {"large", "space", "budget",
                                          "recursive"}
