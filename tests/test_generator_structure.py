"""Structural tests for the synthetic-benchmark generator's output."""

import pytest

from repro.compiler.opt_compiler import iter_call_sites
from repro.compiler.size_estimator import SizeClass, classify, is_large
from repro.jvm.costs import DEFAULT_COSTS
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import S_VIRTUAL_CALL
from repro.workloads.generator import (BenchmarkSpec, PatternSpec,
                                       SharedMediumSpec, generate)


def small_spec(**overrides):
    base = dict(
        name="t", classes=30, methods=220, bytecodes=9_000, seed=7,
        iterations=50, drivers=3,
        patterns=(PatternSpec(fanout=3, correlated=True, depth=3),),
        shared=(SharedMediumSpec(static=True),),
        cond_patterns=1, helper_chain=2)
    base.update(overrides)
    return BenchmarkSpec(**base)


@pytest.fixture(scope="module")
def generated():
    return generate(small_spec())


class TestPatternStructure:
    def test_receiver_classes_form_hierarchy(self, generated):
        program = generated.program
        assert "P0B" in program.classes
        for j in range(3):
            assert program.classes[f"P0C{j}"].superclass == "P0B"

    def test_selector_polymorphic(self, generated):
        hierarchy = ClassHierarchy(generated.program)
        impls = hierarchy.implementations("sel0")
        # Base + fanout-1 overrides (subclass 0 inherits).
        assert len(impls) == 3

    def test_worker_is_medium(self, generated):
        proc = generated.program.method("P0U.proc0")
        assert classify(proc, DEFAULT_COSTS) is SizeClass.MEDIUM

    def test_dispatch_site_recorded(self, generated):
        site = generated.pattern_sites[0]
        method_id, kind = generated.program.site_location(site)
        assert method_id == "P0U.proc0"
        assert kind == "virtual"

    def test_depth3_pattern_has_one_wrapper(self, generated):
        wrapper = generated.program.method("P0U.w0_0")
        assert classify(wrapper, DEFAULT_COSTS) in (SizeClass.TINY,
                                                    SizeClass.SMALL)

    def test_one_caller_per_receiver_class(self, generated):
        for j in range(3):
            generated.program.method(f"P0U.c0_{j}")


class TestSharedMediumStructure:
    def test_wrapper_small_callee_medium(self, generated):
        s = generated.program.method("Shr0.s0")
        m = generated.program.method("Shr0.m0")
        assert classify(s, DEFAULT_COSTS) is SizeClass.SMALL
        assert classify(m, DEFAULT_COSTS) is SizeClass.MEDIUM

    def test_every_driver_calls_the_wrapper(self, generated):
        for d in range(3):
            driver = generated.program.method(f"Drv.t{d}")
            targets = [stmt.target for stmt in iter_call_sites(driver.body)
                       if stmt.kind != S_VIRTUAL_CALL]
            assert "Shr0.s0" in targets


class TestCondPatternStructure:
    def test_taken_and_untaken_callers_exist(self, generated):
        generated.program.method("Cond0.ct0")
        generated.program.method("Cond0.cf0")

    def test_helper_is_medium(self, generated):
        helper = generated.program.method("Cond0.h0")
        assert classify(helper, DEFAULT_COSTS) is SizeClass.MEDIUM


class TestLargeChain:
    def test_large_methods_interposed(self):
        generated = generate(small_spec(large_in_chain=True, classes=31))
        large = generated.program.method("Big.L0")
        assert is_large(large, DEFAULT_COSTS)
        # Drivers route through the large method instead of calling the
        # pattern callers directly.
        driver = generated.program.method("Drv.t0")
        targets = {stmt.target for stmt in iter_call_sites(driver.body)
                   if hasattr(stmt, "target")}
        assert any(t.startswith("Big.L") for t in targets)


class TestDutyCycle:
    def test_duty_cycle_reduces_dispatches(self):
        from repro.aos.runtime import AdaptiveRuntime
        from repro.policies import make_policy

        full = generate(small_spec(iterations=300))
        throttled = generate(small_spec(
            iterations=300,
            patterns=(PatternSpec(fanout=3, correlated=True, depth=3,
                                  duty_cycle=3),)))
        r_full = AdaptiveRuntime(full.program,
                                 make_policy("cins", 1)).run()
        r_thr = AdaptiveRuntime(throttled.program,
                                make_policy("cins", 1)).run()
        assert r_thr.dispatches < r_full.dispatches

    def test_invalid_duty_cycle_rejected(self):
        from repro.jvm.errors import ConfigError
        with pytest.raises(ConfigError):
            PatternSpec(duty_cycle=0)


class TestColdMass:
    def test_cold_classes_populated(self, generated):
        cold = [name for name in generated.program.classes
                if name.startswith("Cold")]
        assert cold
        for name in cold:
            assert generated.program.classes[name].methods

    def test_init_groups_cover_every_cold_method(self, generated):
        program = generated.program
        called = set()
        for name, cls in program.classes.items():
            if name != "Init":
                continue
            for method in cls.methods.values():
                for stmt in iter_call_sites(method.body):
                    called.add(stmt.target)
        cold_methods = {m.id for m in program.methods()
                        if m.klass.startswith("Cold")}
        assert cold_methods <= called


class TestInterfacePatterns:
    def test_interface_pattern_dispatches_through_itable(self):
        from repro.aos.runtime import AdaptiveRuntime
        from repro.policies import make_policy

        spec = small_spec(
            classes=31,
            patterns=(PatternSpec(fanout=3, correlated=True, depth=2,
                                  via_interface=True),))
        generated = generate(spec)
        program = generated.program
        # The contract class exists and receivers implement it.
        assert "P0I" in program.classes
        assert program.classes["P0B"].interfaces == ("P0I",)
        site = generated.pattern_sites[0]
        assert program.site_location(site)[1] == "interface"
        # The program still runs (and dispatches) correctly.
        runtime = AdaptiveRuntime(program, make_policy("cins", 1))
        result = runtime.run()
        assert result.return_value == 0
        assert result.dispatches + result.guard_tests > 0

    def test_default_patterns_stay_virtual(self):
        generated = generate(small_spec())
        site = generated.pattern_sites[0]
        assert generated.program.site_location(site)[1] == "virtual"

    def test_knob_does_not_change_default_programs(self):
        # The calibrated suite must be unaffected by the knob's existence.
        a = generate(small_spec()).program
        b = generate(small_spec()).program
        assert [m.bytecodes for m in a.methods()] == \
            [m.bytecodes for m in b.methods()]
