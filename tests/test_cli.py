"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "jess", "--policy", "fixed", "--depth", "2",
                     "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total cycles" in out
        assert "fixed(max=2)" in out
        assert "guard tests" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "quake"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "jess", "--policy", "nonsense"])


class TestTable1Command:
    def test_prints_table(self, capsys):
        assert main(["table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SPECjbb2000" in out


class TestSweepAndFigures:
    def test_sweep_then_figures(self, tmp_path, capsys):
        cache = str(tmp_path / "sweep.json")
        code = main(["sweep", "--out", cache, "--scale", "0.05",
                     "--benchmarks", "jess", "db",
                     "--phases", "0.0"])
        assert code == 0
        assert (tmp_path / "sweep.json").exists()
        capsys.readouterr()

        code = main(["figures", "--cache", cache, "--which", "fig4",
                     "headline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Headline" in out

    def test_figures_without_cache_fails(self, tmp_path, capsys):
        code = main(["figures", "--cache", str(tmp_path / "missing.json")])
        assert code == 1
        assert "no sweep cache" in capsys.readouterr().err


class TestAblationsCommand:
    def test_threshold(self, capsys):
        assert main(["ablations", "threshold", "--scale", "0.05"]) == 0
        assert "threshold" in capsys.readouterr().out


class TestTerminationCommand:
    def test_termination_stats(self, capsys):
        assert main(["termination", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "termination" in out
        assert "paramless" in out


class TestFigureBars:
    def test_bars_flag_draws_charts(self, tmp_path, capsys):
        cache = str(tmp_path / "sweep.json")
        main(["sweep", "--out", cache, "--scale", "0.05",
              "--benchmarks", "jess", "--phases", "0.0"])
        capsys.readouterr()
        code = main(["figures", "--cache", cache, "--which", "fig4",
                     "--bars"])
        assert code == 0
        out = capsys.readouterr().out
        assert "harMean at max=" in out


class TestTraceCommand:
    def test_trace_writes_chrome_trace_and_reconciles(self, tmp_path,
                                                      capsys):
        import json

        out_path = str(tmp_path / "trace.json")
        code = main(["trace", "jess", "--policy", "hybrid1", "--depth", "3",
                     "--scale", "0.05", "-o", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "Telemetry component summary" in out
        assert "reconciliation" in out
        assert "perfetto" in out

        with open(out_path) as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        assert events
        assert all({"ph", "ts", "pid", "tid", "name"} <= set(event)
                   for event in events)
        assert any(event["ph"] == "X" and event["name"] == "opt_compile"
                   for event in events)

    def test_trace_default_output_name(self, tmp_path, capsys,
                                       monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "db", "--scale", "0.05"]) == 0
        assert (tmp_path / "trace.json").exists()
        capsys.readouterr()


class TestInspectCommand:
    def test_inspect_prints_trees_and_events(self, capsys):
        code = main(["inspect", "jess", "--policy", "fixed", "--depth",
                     "2", "--scale", "0.05", "--top", "2",
                     "--events", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bc inlined" in out
        assert "AOS event summary" in out
        assert "AOS event timeline" in out


class TestExplainCommand:
    def test_unknown_method_lists_roots_then_explains_one(self, capsys):
        code = main(["explain", "db", "No.Such", "--policy", "fixed",
                     "--depth", "2", "--scale", "0.05"])
        assert code == 1
        err = capsys.readouterr().err
        assert "methods with provenance" in err
        # The error names the methods that do have provenance; explaining
        # one of them must succeed.
        method = err.split(": ", 1)[1].split(",")[0].strip()
        code = main(["explain", "db", method, "--policy", "fixed",
                     "--depth", "2", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"Decision provenance for {method}" in out
        assert "compile v" in out


class TestDecisionsCommand:
    def test_record_then_diff(self, tmp_path, capsys):
        log_a = str(tmp_path / "fixed4.decisions.jsonl")
        log_b = str(tmp_path / "cins.decisions.jsonl")
        assert main(["decisions", "record", "db", "--policy", "fixed",
                     "--depth", "4", "--scale", "0.05", "-o", log_a]) == 0
        assert main(["decisions", "record", "db", "--policy", "cins",
                     "--scale", "0.05", "-o", log_b]) == 0
        out = capsys.readouterr().out
        assert "provenance records" in out

        assert main(["decisions", "diff", log_a, log_b]) == 0
        out = capsys.readouterr().out
        assert "db/fixed/max4@0" in out
        assert "db/cins/max1@0" in out
        assert "flipped" in out
        assert "[verdict]" in out  # acceptance: >=1 verdict flip w/ reasons

    def test_diff_missing_log_fails(self, tmp_path, capsys):
        code = main(["decisions", "diff",
                     str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")])
        assert code == 1
        assert "cannot diff" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_analyze_clean_benchmarks(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "analysis.json")
        code = main(["analyze", "--benchmarks", "compress", "db",
                     "--scale", "0.05", "-o", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "verifier : OK" in out
        assert "soundness" in out
        assert "analysis: 2 program(s)" in out
        assert ": OK" in out

        with open(out_path) as handle:
            bundle = json.load(handle)
        assert bundle["schema"] == "repro.analysis/v1"
        assert bundle["ok"] is True
        assert len(bundle["reports"]) == 2
        for report in bundle["reports"]:
            assert report["verifier"]["ok"]
            assert report["soundness"]["ok"]
            assert set(report["callgraph"]) == {"cha", "rta"}

    def test_analyze_no_soundness_skips_replay(self, capsys):
        code = main(["analyze", "--benchmarks", "compress",
                     "--scale", "0.05", "--no-soundness"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verifier : OK" in out
        assert "soundness" not in out

    def test_analyze_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--benchmarks", "quake"])

    def test_analyze_precision_selects_tiers(self, capsys):
        code = main(["analyze", "--benchmarks", "compress",
                     "--scale", "0.05", "--no-soundness",
                     "--precision", "rta", "0cfa", "kcfa", "--k", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "  rta" in out and "  0cfa" in out and "  1cfa" in out
        assert "  cha" not in out

    def test_analyze_unknown_precision_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--benchmarks", "compress",
                  "--precision", "5cfa"])

    def test_analyze_lattice_reports_rescued_sites(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "lattice.json")
        code = main(["analyze", "--benchmarks", "jess",
                     "--scale", "0.05", "--lattice", "-o", out_path])
        assert code == 0
        out = capsys.readouterr().out
        # Acceptance: >=1 site RTA calls polymorphic that 1-CFA proves
        # context-monomorphic, visible in the human summary.
        assert "rta-poly->1cfa-ctx-mono" in out
        assert "rta-poly->1cfa-ctx-mono: 0 site(s)" not in out
        assert "containment ok" in out
        assert "observed ⊆ 2cfa ⊆ 1cfa ⊆ 0cfa ⊆ rta ⊆ cha" in out

        with open(out_path) as handle:
            bundle = json.load(handle)
        assert bundle["ok"] is True
        (report,) = bundle["reports"]
        assert report["lattice"]["ok"]
        assert report["lattice"]["rescued_sites"]["1cfa"]
        assert report["soundness"]["violation_codes"] == []
        assert [t["precision"] for t in report["soundness"]["tiers"]] == \
            ["cha", "rta", "0cfa", "1cfa", "2cfa"]


class TestAttributeStatic:
    def test_diff_with_static_attribution(self, tmp_path, capsys):
        log_a = str(tmp_path / "fixed4.decisions.jsonl")
        log_b = str(tmp_path / "cins.decisions.jsonl")
        assert main(["decisions", "record", "db", "--policy", "fixed",
                     "--depth", "4", "--scale", "0.05", "-o", log_a]) == 0
        assert main(["decisions", "record", "db", "--policy", "cins",
                     "--scale", "0.05", "-o", log_b]) == 0
        capsys.readouterr()

        assert main(["decisions", "diff", log_a, log_b,
                     "--attribute-static"]) == 0
        out = capsys.readouterr().out
        assert "static attribution" in out
        assert "flip(s)" in out

    def test_attribution_requires_matching_benchmarks(self, tmp_path,
                                                      capsys):
        log_a = str(tmp_path / "db.decisions.jsonl")
        log_b = str(tmp_path / "jess.decisions.jsonl")
        assert main(["decisions", "record", "db", "--policy", "cins",
                     "--scale", "0.05", "-o", log_a]) == 0
        assert main(["decisions", "record", "jess", "--policy", "cins",
                     "--scale", "0.05", "-o", log_b]) == 0
        capsys.readouterr()

        assert main(["decisions", "diff", log_a, log_b,
                     "--attribute-static"]) == 1
        assert "cannot attribute" in capsys.readouterr().err


class TestSweepDecisionLogs:
    def test_sweep_flag_writes_logs(self, tmp_path, capsys):
        cache = str(tmp_path / "sweep.json")
        code = main(["sweep", "--out", cache, "--scale", "0.05",
                     "--benchmarks", "db", "--phases", "0.0",
                     "--decision-logs"])
        assert code == 0
        capsys.readouterr()
        assert list(tmp_path.glob("sweep.cells/*.decisions.jsonl"))


class TestFleetCommand:
    def test_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--instances" in out
        assert "--heterogeneous" in out

    def test_two_instance_fleet_end_to_end(self, tmp_path, capsys):
        import json

        bundle_path = str(tmp_path / "fleet.json")
        code = main(["fleet", "--benchmarks", "jess", "--instances", "2",
                     "--scale", "0.05", "--jobs", "1", "-o", bundle_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "Cold-start elimination" in out
        assert "fleet bundle: OK" in out

        with open(bundle_path) as handle:
            bundle = json.load(handle)
        assert bundle["schema"] == "repro.fleet/v1"
        assert bundle["ok"]
        report = bundle["benchmarks"][0]
        assert report["warm"]["fleet_warm_decisions"] >= 1
        saved = report["cold_start_elimination"]["first_rule_saved_cycles"]
        assert saved > 0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--benchmarks", "quake"])
