"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        code = main(["run", "jess", "--policy", "fixed", "--depth", "2",
                     "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "total cycles" in out
        assert "fixed(max=2)" in out
        assert "guard tests" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "quake"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "jess", "--policy", "nonsense"])


class TestTable1Command:
    def test_prints_table(self, capsys):
        assert main(["table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SPECjbb2000" in out


class TestSweepAndFigures:
    def test_sweep_then_figures(self, tmp_path, capsys):
        cache = str(tmp_path / "sweep.json")
        code = main(["sweep", "--out", cache, "--scale", "0.05",
                     "--benchmarks", "jess", "db",
                     "--phases", "0.0"])
        assert code == 0
        assert (tmp_path / "sweep.json").exists()
        capsys.readouterr()

        code = main(["figures", "--cache", cache, "--which", "fig4",
                     "headline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Headline" in out

    def test_figures_without_cache_fails(self, tmp_path, capsys):
        code = main(["figures", "--cache", str(tmp_path / "missing.json")])
        assert code == 1
        assert "no sweep cache" in capsys.readouterr().err


class TestAblationsCommand:
    def test_threshold(self, capsys):
        assert main(["ablations", "threshold", "--scale", "0.05"]) == 0
        assert "threshold" in capsys.readouterr().out


class TestTerminationCommand:
    def test_termination_stats(self, capsys):
        assert main(["termination", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "termination" in out
        assert "paramless" in out


class TestFigureBars:
    def test_bars_flag_draws_charts(self, tmp_path, capsys):
        cache = str(tmp_path / "sweep.json")
        main(["sweep", "--out", cache, "--scale", "0.05",
              "--benchmarks", "jess", "--phases", "0.0"])
        capsys.readouterr()
        code = main(["figures", "--cache", cache, "--which", "fig4",
                     "--bars"])
        assert code == 0
        out = capsys.readouterr().out
        assert "harMean at max=" in out


class TestTraceCommand:
    def test_trace_writes_chrome_trace_and_reconciles(self, tmp_path,
                                                      capsys):
        import json

        out_path = str(tmp_path / "trace.json")
        code = main(["trace", "jess", "--policy", "hybrid1", "--depth", "3",
                     "--scale", "0.05", "-o", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "Telemetry component summary" in out
        assert "reconciliation" in out
        assert "perfetto" in out

        with open(out_path) as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        assert events
        assert all({"ph", "ts", "pid", "tid", "name"} <= set(event)
                   for event in events)
        assert any(event["ph"] == "X" and event["name"] == "opt_compile"
                   for event in events)

    def test_trace_default_output_name(self, tmp_path, capsys,
                                       monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "db", "--scale", "0.05"]) == 0
        assert (tmp_path / "trace.json").exists()
        capsys.readouterr()


class TestInspectCommand:
    def test_inspect_prints_trees_and_events(self, capsys):
        code = main(["inspect", "jess", "--policy", "fixed", "--depth",
                     "2", "--scale", "0.05", "--top", "2",
                     "--events", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bc inlined" in out
        assert "AOS event summary" in out
        assert "AOS event timeline" in out
