"""Unit tests for the ASCII report renderers."""

from repro.metrics.report import (format_fraction_bars, format_percent,
                                  format_percent_matrix, format_table)


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "333" in lines[-1]
        # Separator spans the header line.
        assert set(lines[1]) == {"-"}

    def test_title_prepended(self):
        out = format_table(["x"], [["1"]], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_wide_cells_stretch_columns(self):
        out = format_table(["h"], [["wide-cell-content"]])
        assert "wide-cell-content" in out


class TestFormatPercent:
    def test_sign_always_shown(self):
        assert format_percent(3.14) == "+3.1%"
        assert format_percent(-2.0) == "-2.0%"
        assert format_percent(0.0) == "+0.0%"


class TestPercentMatrix:
    def test_matrix_rendering(self):
        values = {"jess": {2: 1.5, 3: -0.5}, "db": {2: 4.0, 3: 2.0}}
        out = format_percent_matrix("T", ["jess", "db"], [2, 3], values)
        assert "max=2" in out and "max=3" in out
        assert "+1.5%" in out and "-0.5%" in out

    def test_missing_cell_rendered_as_dashes(self):
        out = format_percent_matrix("T", ["jess"], [2, 3],
                                    {"jess": {2: 1.0}})
        assert "--" in out


class TestFractionBars:
    def test_percentages_and_total(self):
        series = {"cins": {"compilation_thread": 0.012,
                           "aos_listeners": 0.003}}
        out = format_fraction_bars(
            "F6", ["cins"], series,
            ["aos_listeners", "compilation_thread"])
        assert "1.200%" in out
        assert "0.300%" in out
        assert "1.500%" in out  # total


class TestBarChart:
    def test_bars_scale_to_peak(self):
        from repro.metrics.report import format_bar_chart
        out = format_bar_chart("T", {"a": 10.0, "b": -5.0})
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "+10.0%" in lines[1]
        assert "-5.0%" in lines[2]
        # The positive bar is twice as long as the negative one.
        assert lines[1].count("#") == 2 * lines[2].count("#")

    def test_empty_values(self):
        from repro.metrics.report import format_bar_chart
        assert format_bar_chart("T", {}) == "T"

    def test_zero_values_no_crash(self):
        from repro.metrics.report import format_bar_chart
        out = format_bar_chart("", {"a": 0.0})
        assert "+0.0%" in out
