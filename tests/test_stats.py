"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.stats import (geometric_mean, harmonic_mean,
                                 harmonic_mean_speedup, median,
                                 percent_change, speedup_percent)

positive_floats = st.floats(min_value=0.01, max_value=1e6,
                            allow_nan=False, allow_infinity=False)


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_single_value(self):
        assert harmonic_mean([5.0]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -2.0])

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_never_exceeds_arithmetic_mean(self, values):
        hm = harmonic_mean(values)
        am = sum(values) / len(values)
        assert hm <= am * (1 + 1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_bounded_by_extremes(self, values):
        hm = harmonic_mean(values)
        assert min(values) - 1e-9 <= hm <= max(values) + 1e-9


class TestSpeedup:
    def test_speedup_positive_when_faster(self):
        assert speedup_percent(110.0, 100.0) == pytest.approx(10.0)

    def test_speedup_negative_when_slower(self):
        assert speedup_percent(100.0, 125.0) == pytest.approx(-20.0)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            speedup_percent(100.0, 0.0)

    def test_harmonic_mean_speedup_identity(self):
        assert harmonic_mean_speedup([0.0, 0.0]) == pytest.approx(0.0)

    def test_harmonic_mean_speedup_mixed(self):
        # Equal +x and -x do not cancel exactly (harmonic, not arithmetic).
        value = harmonic_mean_speedup([10.0, -10.0])
        assert value < 0.0


class TestPercentChange:
    def test_increase(self):
        assert percent_change(110.0, 100.0) == pytest.approx(10.0)

    def test_decrease(self):
        assert percent_change(90.0, 100.0) == pytest.approx(-10.0)

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            percent_change(1.0, 0.0)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(positive_floats, min_size=1, max_size=15))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= gm <= max(values) * (1 + 1e-9)


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    @given(st.lists(positive_floats, min_size=1, max_size=15))
    def test_median_within_range(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)
