"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.stats import (confidence_interval, geometric_mean,
                                 harmonic_mean, harmonic_mean_speedup,
                                 mean, median, percent_change,
                                 relative_ci_width, sample_stddev,
                                 speedup_percent)

positive_floats = st.floats(min_value=0.01, max_value=1e6,
                            allow_nan=False, allow_infinity=False)


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_single_value(self):
        assert harmonic_mean([5.0]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -2.0])

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_never_exceeds_arithmetic_mean(self, values):
        hm = harmonic_mean(values)
        am = sum(values) / len(values)
        assert hm <= am * (1 + 1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=20))
    def test_bounded_by_extremes(self, values):
        hm = harmonic_mean(values)
        assert min(values) - 1e-9 <= hm <= max(values) + 1e-9


class TestSpeedup:
    def test_speedup_positive_when_faster(self):
        assert speedup_percent(110.0, 100.0) == pytest.approx(10.0)

    def test_speedup_negative_when_slower(self):
        assert speedup_percent(100.0, 125.0) == pytest.approx(-20.0)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            speedup_percent(100.0, 0.0)

    def test_harmonic_mean_speedup_identity(self):
        assert harmonic_mean_speedup([0.0, 0.0]) == pytest.approx(0.0)

    def test_harmonic_mean_speedup_mixed(self):
        # Equal +x and -x do not cancel exactly (harmonic, not arithmetic).
        value = harmonic_mean_speedup([10.0, -10.0])
        assert value < 0.0


class TestPercentChange:
    def test_increase(self):
        assert percent_change(110.0, 100.0) == pytest.approx(10.0)

    def test_decrease(self):
        assert percent_change(90.0, 100.0) == pytest.approx(-10.0)

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            percent_change(1.0, 0.0)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(positive_floats, min_size=1, max_size=15))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= gm <= max(values) * (1 + 1e-9)


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    @given(st.lists(positive_floats, min_size=1, max_size=15))
    def test_median_within_range(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestConfidenceInterval:
    def test_known_two_sample_interval(self):
        # mean 10, stddev sqrt(2), t(df=1)=12.706 ->
        # half width = 12.706 * sqrt(2)/sqrt(2) = 12.706
        ci = confidence_interval([9.0, 11.0])
        assert ci.mean == pytest.approx(10.0)
        assert ci.n == 2
        assert ci.half_width == pytest.approx(12.706)
        assert ci.low == pytest.approx(10.0 - 12.706)
        assert ci.high == pytest.approx(10.0 + 12.706)

    def test_single_sample_is_maximally_uncertain(self):
        ci = confidence_interval([4.2])
        assert ci.mean == pytest.approx(4.2)
        assert ci.low == -math.inf
        assert ci.high == math.inf
        assert ci.n == 1

    def test_identical_samples_zero_width(self):
        ci = confidence_interval([7.0, 7.0, 7.0])
        assert ci.low == ci.high == ci.mean == pytest.approx(7.0)
        assert ci.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_large_sample_uses_normal_tail(self):
        values = [float(v % 7) for v in range(40)]
        ci = confidence_interval(values)
        expected_half = 1.960 * sample_stddev(values) / math.sqrt(len(values))
        assert ci.half_width == pytest.approx(expected_half)

    @given(st.lists(positive_floats, min_size=2, max_size=12))
    def test_interval_contains_mean(self, values):
        ci = confidence_interval(values)
        assert ci.low <= ci.mean <= ci.high


class TestRelativeCIWidth:
    def test_tight_cluster_is_small(self):
        assert relative_ci_width([100.0, 100.5, 99.5]) < 0.05

    def test_noisy_cluster_is_large(self):
        assert relative_ci_width([1.0, 10.0, -5.0]) > 1.0

    def test_single_sample_is_infinite(self):
        assert relative_ci_width([3.0]) == math.inf

    def test_zero_mean_nonzero_spread_is_infinite(self):
        assert relative_ci_width([-1.0, 1.0]) == math.inf

    def test_zero_mean_zero_spread_is_stable(self):
        # Identical samples are perfectly stable even at mean zero.
        assert relative_ci_width([0.0, 0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            relative_ci_width([])


class TestMeanAndStddev:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stddev_known(self):
        assert sample_stddev([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))

    def test_stddev_needs_two(self):
        with pytest.raises(ValueError):
            sample_stddev([1.0])
