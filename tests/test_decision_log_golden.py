"""Golden decision-log test: the provenance schema is a contract.

A fixed, fully deterministic run (the hashmap example under fixed:2) is
recorded and its JSONL compared record-by-record against a committed
golden log.  Any change to the oracle's decisions, the reason-code
vocabulary, or the serialized schema shows up as a diff here -- which is
the point: such changes must be *deliberate*, made by regenerating the
golden file and reviewing its diff.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/test_decision_log_golden.py
"""

import json
import os

from repro.aos.runtime import AdaptiveRuntime
from repro.policies import make_policy
from repro.provenance import ProvenanceRecorder, parse_jsonl
from repro.workloads.hashmap_example import build as build_hashmap

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "hashmap_fixed2.decisions.jsonl")


def current_log_text() -> str:
    built = build_hashmap(iterations=4000)
    recorder = ProvenanceRecorder(label="golden/hashmap/fixed2")
    runtime = AdaptiveRuntime(built.program, make_policy("fixed", 2),
                              provenance=recorder)
    runtime.run()
    return recorder.to_jsonl()


def test_decision_log_matches_golden():
    with open(GOLDEN_PATH) as handle:
        golden_text = handle.read()
    current_text = current_log_text()

    golden_meta, golden_records = parse_jsonl(golden_text)
    current_meta, current_records = parse_jsonl(current_text)
    assert current_meta == golden_meta

    # Record-by-record so a failure names the first drifted record
    # instead of dumping two multi-hundred-line blobs.
    for index, (want, got) in enumerate(zip(golden_records,
                                            current_records)):
        assert got == want, (
            f"record {index} drifted from golden log\n"
            f"  golden:  {want}\n"
            f"  current: {got}\n"
            f"(intentional? regenerate: PYTHONPATH=src python "
            f"tests/test_decision_log_golden.py)")
    assert len(current_records) == len(golden_records)

    # Byte-level equality additionally pins the serialization itself
    # (key order, float formatting, header layout).
    assert current_text == golden_text


def test_golden_log_is_wellformed():
    with open(GOLDEN_PATH) as handle:
        meta, records = parse_jsonl(handle.read())
    assert meta["label"] == "golden/hashmap/fixed2"
    assert records
    with open(GOLDEN_PATH) as handle:
        for line in handle:
            json.loads(line)  # every line is standalone JSON


if __name__ == "__main__":
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as handle:
        handle.write(current_log_text())
    print(f"regenerated {GOLDEN_PATH}")
