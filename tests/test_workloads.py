"""Tests for the workload builder, generator, and SPEC-like suite."""

import pytest

from repro.jvm.errors import ConfigError, ProgramError
from repro.jvm.program import Const, Return, Work
from repro.workloads.builder import ProgramBuilder
from repro.workloads.generator import (BenchmarkSpec, PatternSpec,
                                       SharedMediumSpec, generate)
from repro.workloads.hashmap_example import build as build_hashmap
from repro.workloads.spec import (BENCHMARK_ORDER, TABLE1, build_benchmark,
                                  build_suite)


class TestProgramBuilder:
    def test_site_ids_unique(self):
        b = ProgramBuilder("t")
        assert b.site() != b.site()

    def test_cls_idempotent(self):
        b = ProgramBuilder("t")
        first = b.cls("C")
        assert b.cls("C") is first

    def test_cls_conflicting_superclass_rejected(self):
        b = ProgramBuilder("t")
        b.cls("Base")
        b.cls("C", superclass="Base")
        with pytest.raises(ProgramError):
            b.cls("C", superclass=None)

    def test_method_requires_declared_class(self):
        b = ProgramBuilder("t")
        with pytest.raises(ProgramError):
            b.method("Ghost", "m", [Return(Const(0))])

    def test_call_helpers_allocate_sites(self):
        b = ProgramBuilder("t")
        b.cls("C")
        b.static_method("C", "m", [Return(Const(0))])
        call = b.call("C.m")
        vcall = b.vcall("m", Const(0))
        assert call.site != vcall.site

    def test_build_validates(self):
        b = ProgramBuilder("t")
        b.cls("C")
        b.static_method("C", "m", [b.call("C.ghost")])
        with pytest.raises(ProgramError):
            b.build()


class TestHashMapExample:
    def test_builds_and_validates(self):
        built = build_hashmap(iterations=5)
        assert built.program.entry == "HashMapTest.main"
        assert built.sites.cs1 != built.sites.cs2

    def test_hashcode_polymorphic(self):
        from repro.jvm.hierarchy import ClassHierarchy
        built = build_hashmap(iterations=5)
        hierarchy = ClassHierarchy(built.program)
        assert hierarchy.sole_implementation("hashCode") is None
        assert hierarchy.sole_implementation("intValue") is not None


class TestSpecSuite:
    def test_all_benchmarks_match_table1_exactly_for_static_counts(self):
        for name in BENCHMARK_ORDER:
            generated = build_benchmark(name)
            program = generated.program
            classes, methods, _bc = TABLE1[name]
            assert len(program.classes) == classes, name
            assert len(program.methods()) == methods, name

    def test_bytecodes_within_tolerance(self):
        for name in BENCHMARK_ORDER:
            generated = build_benchmark(name)
            target = TABLE1[name][2]
            actual = generated.program.total_bytecodes()
            assert abs(actual - target) / target < 0.01, name

    def test_generation_deterministic(self):
        a = build_benchmark("jess").program
        b = build_benchmark("jess").program
        assert [m.id for m in a.methods()] == [m.id for m in b.methods()]
        assert [m.bytecodes for m in a.methods()] == \
            [m.bytecodes for m in b.methods()]

    def test_scale_shrinks_only_dynamics(self):
        full = build_benchmark("db")
        small = build_benchmark("db", scale=0.1)
        assert small.spec.iterations < full.spec.iterations
        assert len(small.program.methods()) == len(full.program.methods())

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError):
            build_benchmark("quake")

    def test_build_suite_covers_order(self):
        suite = build_suite(scale=0.05)
        assert tuple(suite) == BENCHMARK_ORDER


class TestSpecValidation:
    def test_pattern_fanout_validated(self):
        with pytest.raises(ConfigError):
            PatternSpec(fanout=1)

    def test_pattern_depth_validated(self):
        with pytest.raises(ConfigError):
            PatternSpec(depth=1)

    def test_benchmark_spec_validated(self):
        with pytest.raises(ConfigError):
            BenchmarkSpec(name="x", classes=10, methods=10, bytecodes=100,
                          seed=1, iterations=0)

    def test_too_few_classes_rejected(self):
        spec = BenchmarkSpec(
            name="tiny", classes=3, methods=400, bytecodes=9000, seed=1,
            iterations=10,
            patterns=(PatternSpec(),), shared=(SharedMediumSpec(),))
        with pytest.raises(ConfigError):
            generate(spec)


class TestGeneratedDynamics:
    """Run a scaled-down benchmark and check every method is exercised."""

    @pytest.fixture(scope="class")
    def executed(self):
        from repro.aos.runtime import AdaptiveRuntime
        from repro.policies import make_policy
        generated = build_benchmark("compress", scale=0.05)
        runtime = AdaptiveRuntime(generated.program, make_policy("cins", 1))
        result = runtime.run()
        return generated, runtime, result

    def test_every_method_dynamically_compiled(self, executed):
        generated, _runtime, result = executed
        # Table 1's "methods dynamically compiled" equals the program's
        # method count: startup touches all cold code.
        assert result.methods_compiled == len(generated.program.methods())

    def test_bytecodes_compiled_match_program(self, executed):
        generated, _runtime, result = executed
        assert result.bytecodes_compiled == \
            generated.program.total_bytecodes()

    def test_polymorphic_sites_dispatched(self, executed):
        _generated, _runtime, result = executed
        assert result.dispatches > 0

    def test_correlated_pattern_is_context_monomorphic(self, executed):
        generated, runtime, _result = executed
        site = generated.pattern_sites[0]
        caller = generated.program.site_location(site)[0]
        dist = runtime.state.dcg.site_target_distribution(caller, site)
        # Globally polymorphic...
        assert len(dist) >= 2
