"""Unit tests for backward live-variable analysis over the statement tree.

Exercises the :class:`~repro.analysis.dataflow.BackwardAnalysis` engine
through its liveness client, with a focus on the edge cases that make
backward structured dataflow subtle: nested-loop fixpoint termination,
empty bodies, loop-carried liveness that exists only across the back
edge, and join determinism when branch order is shuffled.
"""

from repro.analysis.liveness import (LivenessAnalysis, collect_uses,
                                     method_liveness)
from repro.jvm.program import (Arg, Const, If, Let, Local, Loop, MethodDef,
                               New, Pick, Return, VirtualCall, Work)


def _method(body, params=1, locals_=8):
    """A bare static method; liveness is purely syntactic, so no program
    (or even class) context is needed."""
    return MethodDef("T", "m", params, True, body, num_locals=locals_)


class TestCollectUses:
    def test_local_and_const(self):
        assert collect_uses(Local(3), set()) == {3}
        assert collect_uses(Const(7), set()) == set()

    def test_arg_is_not_a_local_use(self):
        # Args live in the shared immutable argument tuple: both tiers
        # see the same storage and OSR never maps it.
        assert collect_uses(Arg(0), set()) == set()

    def test_pick_reads_pool_and_index(self):
        assert collect_uses(Pick(Local(1), Local(2)), set()) == {1, 2}


class TestEmptyBody:
    def test_empty_body_yields_empty_facts(self):
        info = method_liveness(_method([]))
        assert info.entry_live == frozenset()
        assert info.loops == ()
        assert info.site_live == {}
        assert info.loop_live_by_id == {}

    def test_use_free_body_yields_empty_entry(self):
        info = method_liveness(_method([Work(5), Return(Const(0))]))
        assert info.entry_live == frozenset()

    def test_loop_with_empty_body_terminates(self):
        info = method_liveness(_method([
            Loop(Const(3), 0, []), Return(Local(1))]))
        (loop,) = info.loops
        assert loop.live == frozenset({1})  # the after-loop read only


class TestReturnResetsState:
    def test_unreachable_tail_does_not_leak_uses(self):
        # Reversed processing sees Return(Local(2)) first, but the
        # earlier Return must *reset* the state to its own operand's
        # uses: nothing after a return in the same body ever runs.
        info = method_liveness(_method([
            Return(Local(1)), Return(Local(2))]))
        assert info.entry_live == frozenset({1})


class TestLoopCarriedLiveness:
    def test_live_only_across_back_edge(self):
        # Local 1 is read early in the iteration and written late, and
        # nothing after the loop reads it: it is live *only* across the
        # back edge, which a single backward pass without the loop
        # fixpoint would miss.
        info = method_liveness(_method([
            Loop(Const(3), 0, [
                Let(2, Local(1)),
                Let(1, Const(5)),
            ]),
            Return(Const(0)),
        ]))
        (loop,) = info.loops
        assert 1 in loop.live
        assert 2 not in loop.live  # written before any read
        assert info.entry_live == frozenset({1})  # first trip reads entry value

    def test_loop_index_is_never_loop_carried(self):
        # The induction variable is assigned at the head of every
        # iteration, so even though the body reads it, it is dead at
        # the back edge and must not appear in the OSR map-in set.
        info = method_liveness(_method([
            Loop(Const(3), 0, [Let(1, Local(0))]),
            Return(Local(1)),
        ]))
        (loop,) = info.loops
        assert loop.index_local == 0
        assert 0 not in loop.live
        assert loop.live == frozenset({1})

    def test_zero_trip_keeps_after_loop_state_live(self):
        # The loop may run zero times, so locals read only after the
        # loop stay live at the header.
        info = method_liveness(_method([
            Loop(Const(3), 0, [Let(1, Const(2))]),
            Return(Local(3)),
        ]))
        (loop,) = info.loops
        assert 3 in loop.live


class TestNestedLoopFixpoint:
    def test_nested_fixpoint_terminates_and_converges(self):
        # A three-link chain threaded across both loops: 2 -> 3 in the
        # inner loop, 4 -> 2 in the outer, 4 read after.  The fixpoint
        # must make all three live at both headers (each is read on
        # some future path before being overwritten).
        info = method_liveness(_method([
            Loop(Const(3), 0, [
                Loop(Const(3), 1, [
                    Let(4, Local(3)),
                    Let(3, Local(2)),
                ]),
                Let(2, Local(4)),
            ]),
            Return(Local(4)),
        ]))
        outer, inner = info.loops
        assert outer.path == "body[0].loop"
        assert inner.path == "body[0].loop.body[0].loop"
        assert outer.live == frozenset({2, 3, 4})
        assert inner.live == frozenset({2, 3, 4})
        # Neither induction variable is ever loop-carried.
        assert 0 not in outer.live and 1 not in inner.live

    def test_fixpoint_is_stable_under_reanalysis(self):
        method = _method([
            Loop(Const(3), 0, [
                Loop(Const(3), 1, [Let(3, Local(2)), Let(2, Local(3))]),
            ]),
            Return(Local(2)),
        ])
        first = method_liveness(method)
        second = method_liveness(method)
        assert [loop.live for loop in first.loops] == \
            [loop.live for loop in second.loops]
        assert first.entry_live == second.entry_live


class TestJoinDeterminism:
    def _branchy(self, swap: bool):
        then_body = [VirtualCall(0, "ping", Local(1), dst=0)]
        else_body = [VirtualCall(1, "ping", Local(2), dst=0)]
        if swap:
            then_body, else_body = else_body, then_body
        return _method([
            If(Arg(0), then_body, else_body),
            Return(Local(0)),
        ])

    def test_branch_order_does_not_change_facts(self):
        # The join is set union, so shuffling successor order (here:
        # swapping the two branch bodies) must not change any recorded
        # fact -- per-site or at entry.
        straight = method_liveness(self._branchy(swap=False))
        shuffled = method_liveness(self._branchy(swap=True))
        assert straight.entry_live == shuffled.entry_live == frozenset({1, 2})
        assert straight.site_live == shuffled.site_live
        assert straight.site_live[0] == frozenset({1})
        assert straight.site_live[1] == frozenset({2})


class TestSiteLive:
    def test_call_dst_is_killed_and_receiver_counted(self):
        info = method_liveness(_method([
            Let(0, Arg(0)),
            Let(1, Const(7)),
            Let(2, Const(9)),
            VirtualCall(0, "ping", Local(0), dst=2),
            Return(Local(1)),
        ], params=1, locals_=4))
        # Live before the call: the receiver (0), the value read after
        # the call (1); the call's own dst (2) is dead at that point.
        assert info.site_live[0] == frozenset({0, 1})

    def test_entry_live_flags_default_value_reads(self):
        info = method_liveness(_method([Return(Local(5))]))
        assert info.entry_live == frozenset({5})

    def test_fresh_analysis_instances_share_nothing(self):
        method = _method([Loop(Const(2), 0, [Let(1, Local(1))]),
                          Return(Local(1))])
        one = LivenessAnalysis()
        one.analyze(method)
        two = LivenessAnalysis()
        two.analyze(method)
        assert one.loop_live.keys() == two.loop_live.keys()
