"""Unit tests for policy construction and the imprecision-driven policy."""

import pytest

from repro.jvm.costs import CostModel
from repro.jvm.errors import ConfigError
from repro.jvm.program import Const, MethodDef, Return
from repro.policies import POLICY_LABELS, make_policy
from repro.policies.base import ContextSensitivityPolicy
from repro.policies.catalog import ContextInsensitive, FixedLevel
from repro.policies.imprecision import GIVE_UP_EPOCHS, ImprecisionDriven
from repro.profiles.dcg import DynamicCallGraph
from repro.profiles.trace import TraceKey


def method(name, params=1, static=False, bytecodes=20):
    return MethodDef("K", name, params, static, [Return(Const(0))],
                     bytecodes=bytecodes)


class TestFactory:
    @pytest.mark.parametrize("label", POLICY_LABELS)
    def test_all_labels_constructible(self, label):
        policy = make_policy(label, 3)
        assert isinstance(policy, ContextSensitivityPolicy)
        assert policy.label == label

    def test_unknown_label(self):
        with pytest.raises(ConfigError):
            make_policy("nonsense", 2)

    def test_cins_is_depth_one(self):
        assert make_policy("cins", 5).max_depth == 1

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            FixedLevel(0)

    def test_name_includes_depth(self):
        assert make_policy("fixed", 4).name == "fixed(max=4)"

    def test_base_policy_never_stops(self):
        policy = ContextSensitivityPolicy(3)
        m = method("m", params=0, static=True)
        assert not policy.stop_below(m)
        assert not policy.stop_at(m)
        assert policy.depth_limit("X", 1) == 3
        policy.observe(DynamicCallGraph())  # no-op hook


class TestImprecisionDriven:
    def _unskewed_dcg(self):
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("T1", (("C", 1),)), 10.0)
        dcg.add(TraceKey("T2", (("C", 1),)), 10.0)
        return dcg

    def test_sites_start_at_depth_one(self):
        policy = ImprecisionDriven(4)
        assert policy.depth_limit("C", 1) == 1

    def test_unskewed_site_deepened(self):
        policy = ImprecisionDriven(4)
        policy.observe(self._unskewed_dcg())
        assert policy.depth_limit("C", 1) == 2

    def test_skewed_site_untouched(self):
        policy = ImprecisionDriven(4)
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("T1", (("C", 1),)), 19.0)
        dcg.add(TraceKey("T2", (("C", 1),)), 1.0)
        policy.observe(dcg)
        assert policy.depth_limit("C", 1) == 1

    def test_resolution_halts_deepening(self):
        policy = ImprecisionDriven(4)
        dcg = self._unskewed_dcg()
        policy.observe(dcg)  # depth 2
        # Now deeper samples reveal per-context monomorphism.
        dcg.add(TraceKey("T1", (("C", 1), ("X", 2))), 30.0)
        dcg.add(TraceKey("T2", (("C", 1), ("Y", 3))), 30.0)
        policy.observe(dcg)
        assert policy.depth_limit("C", 1) == 2  # resolved; no more depth
        assert ("C", 1) in policy.deepened_sites()

    def test_inherently_polymorphic_abandoned(self):
        policy = ImprecisionDriven(2)
        dcg = self._unskewed_dcg()
        # Add deep-but-still-unskewed context samples.
        dcg.add(TraceKey("T1", (("C", 1), ("X", 2))), 10.0)
        dcg.add(TraceKey("T2", (("C", 1), ("X", 2))), 10.0)
        for _ in range(1 + GIVE_UP_EPOCHS):
            policy.observe(dcg)
        assert policy.depth_limit("C", 1) == 1
        assert policy.abandoned_sites() == 1

    def test_abandoned_site_not_redeepened(self):
        policy = ImprecisionDriven(2)
        dcg = self._unskewed_dcg()
        dcg.add(TraceKey("T1", (("C", 1), ("X", 2))), 10.0)
        dcg.add(TraceKey("T2", (("C", 1), ("X", 2))), 10.0)
        for _ in range(2 + GIVE_UP_EPOCHS):
            policy.observe(dcg)
        assert policy.depth_limit("C", 1) == 1

    def test_epoch_counter(self):
        policy = ImprecisionDriven(3)
        policy.observe(DynamicCallGraph())
        policy.observe(DynamicCallGraph())
        assert policy.epochs == 2
