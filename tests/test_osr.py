"""Tests for on-stack replacement of long-running baseline loops."""

import pytest

from repro.aos.runtime import AdaptiveRuntime
from repro.compiler.code_cache import CodeCache
from repro.compiler.compiled_method import CompiledMethod, InlineNode
from repro.jvm.costs import CostModel, DEFAULT_COSTS
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.interpreter import Machine
from repro.jvm.program import (Arg, Const, Local, Loop, Return, StaticCall,
                               Work)
from repro.policies import make_policy
from repro.workloads.builder import ProgramBuilder


def loop_heavy_program(iterations=6000):
    """main is one long loop: invisible to invocation-biased sampling."""
    b = ProgramBuilder("osr")
    b.cls("Main")
    b.static_method("Main", "tinywork", [Work(3), Return(Const(0))])
    b.static_method("Main", "main", [
        Loop(Const(iterations), 0, [
            Work(4),
            StaticCall(100, "Main.tinywork", dst=1),
        ]),
        Return(Const(0)),
    ], locals_=4)
    b.entry("Main.main")
    return b.build()


class TestOSR:
    def test_loop_transfers_to_optimized_code(self):
        runtime = AdaptiveRuntime(loop_heavy_program(),
                                  make_policy("cins", 1))
        result = runtime.run()
        assert result.osr_transfers >= 1
        assert runtime.code_cache.opt_version("Main.main") is not None
        # The OSR compile is logged with its own reason.
        events = runtime.database.compilations_of("Main.main")
        assert events and events[0].reason == "osr"

    def test_osr_faster_than_without(self):
        on = AdaptiveRuntime(loop_heavy_program(),
                             make_policy("cins", 1)).run()
        costs_off = DEFAULT_COSTS.replace(osr_enabled=False)
        off = AdaptiveRuntime(loop_heavy_program(),
                              make_policy("cins", 1), costs_off).run()
        assert off.osr_transfers == 0
        # The loop spends the run at baseline without OSR: clearly slower.
        assert on.total_cycles < off.total_cycles

    def test_backedges_counted(self):
        runtime = AdaptiveRuntime(loop_heavy_program(500),
                                  make_policy("cins", 1))
        runtime.run()
        assert runtime.machine.backedge_counts.get("Main.main") == 500

    def test_threshold_gates_request(self):
        # A loop shorter than the threshold never requests OSR.
        costs = DEFAULT_COSTS.replace(osr_backedge_threshold=10 ** 9)
        runtime = AdaptiveRuntime(loop_heavy_program(),
                                  make_policy("cins", 1), costs)
        result = runtime.run()
        assert result.osr_transfers == 0
        assert not runtime.database.compilations_of("Main.main")

    def test_transferred_loop_result_unchanged(self):
        on = AdaptiveRuntime(loop_heavy_program(),
                             make_policy("cins", 1)).run()
        costs_off = DEFAULT_COSTS.replace(osr_enabled=False)
        off = AdaptiveRuntime(loop_heavy_program(),
                              make_policy("cins", 1), costs_off).run()
        assert on.return_value == off.return_value

    def test_invalidate_then_reheat_requests_osr_again(self):
        # Regression: the once-per-method OSR notification was never
        # cleared when a method's optimized code got invalidated, so a
        # deoptimized loop could spin at baseline forever.
        program = loop_heavy_program(2000)
        costs = DEFAULT_COSTS.replace(osr_backedge_threshold=500)
        machine = Machine(program, ClassHierarchy(program),
                          CodeCache(costs), costs)
        requests = []
        machine.osr_handler = requests.append

        machine.run()
        assert requests == ["Main.main"]
        # The notification is once-per-method: while the compile is
        # outstanding, further runs must not re-request.
        machine.run()
        assert requests == ["Main.main"]

        # The compile lands; a class load then breaks it.
        root = program.method("Main.main")
        machine.code_cache.install(CompiledMethod(
            InlineNode(root), inlined_bytecodes=root.bytecodes,
            code_bytes=64, compile_cycles=100, version=1))
        assert machine.code_cache.invalidate("Main.main")
        machine.on_code_invalidated("Main.main")

        # Back at baseline and still hot (back-edge counts were kept):
        # the loop may ask for OSR again.
        machine.run()
        assert requests == ["Main.main", "Main.main"]

    def test_counts_accumulate_across_loop_executions(self):
        # A method whose loop runs multiple times accumulates back edges
        # across invocations (Jikes counters are per-method).
        b = ProgramBuilder("osr2")
        b.cls("Main")
        b.static_method("Main", "inner", [
            Loop(Const(100), 0, [Work(2)]),
            Return(Const(0)),
        ], params=1, locals_=2)
        b.static_method("Main", "main", [
            Loop(Const(30), 0, [
                StaticCall(1, "Main.inner", [Local(0)], dst=1),
            ]),
            Return(Const(0)),
        ], locals_=4)
        b.entry("Main.main")
        runtime = AdaptiveRuntime(b.build(), make_policy("cins", 1))
        runtime.run()
        counts = runtime.machine.backedge_counts
        # inner may get optimized partway through (stopping baseline
        # counting), but the count must exceed one execution's worth.
        assert counts.get("Main.inner", 0) >= 100
