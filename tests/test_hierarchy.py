"""Unit tests for class hierarchy analysis."""

import pytest

from repro.jvm.errors import ExecutionError, ProgramError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import ClassDef, Const, MethodDef, Program, Return


def _program():
    p = Program("h")
    p.add_class(ClassDef("Base"))
    p.add_class(ClassDef("Mid", superclass="Base"))
    p.add_class(ClassDef("Leaf", superclass="Mid"))
    p.add_class(ClassDef("Other"))

    def declare(klass, name):
        p.classes[klass].declare(
            MethodDef(klass, name, 1, False, [Return(Const(0))]))

    declare("Base", "ping")
    declare("Mid", "ping")        # overrides Base.ping
    declare("Base", "solo")       # single implementation program-wide
    declare("Other", "ping")      # unrelated implementation
    p.validate()
    return p


@pytest.fixture
def hierarchy():
    return ClassHierarchy(_program())


class TestResolve:
    def test_resolves_own_method(self, hierarchy):
        assert hierarchy.resolve("Base", "ping").klass == "Base"

    def test_resolves_override(self, hierarchy):
        assert hierarchy.resolve("Mid", "ping").klass == "Mid"

    def test_walks_superclass_chain(self, hierarchy):
        # Leaf has no ping; inherits Mid's override.
        assert hierarchy.resolve("Leaf", "ping").klass == "Mid"

    def test_inherited_from_root(self, hierarchy):
        assert hierarchy.resolve("Leaf", "solo").klass == "Base"

    def test_unknown_class(self, hierarchy):
        with pytest.raises(ExecutionError):
            hierarchy.resolve("Ghost", "ping")

    def test_missing_selector(self, hierarchy):
        with pytest.raises(ExecutionError):
            hierarchy.resolve("Other", "solo")

    def test_resolution_cached_identity(self, hierarchy):
        first = hierarchy.resolve("Leaf", "ping")
        assert hierarchy.resolve("Leaf", "ping") is first


class TestCHA:
    def test_sole_implementation_found(self, hierarchy):
        assert hierarchy.sole_implementation("solo").klass == "Base"

    def test_multiple_implementations_not_bound(self, hierarchy):
        assert hierarchy.sole_implementation("ping") is None

    def test_unknown_selector(self, hierarchy):
        assert hierarchy.sole_implementation("ghost") is None

    def test_implementations_lists_all(self, hierarchy):
        impls = hierarchy.implementations("ping")
        assert sorted(m.klass for m in impls) == ["Base", "Mid", "Other"]


class TestSubclasses:
    def test_reflexive(self, hierarchy):
        assert "Base" in hierarchy.subclasses("Base")

    def test_transitive(self, hierarchy):
        assert hierarchy.subclasses("Base") == {"Base", "Mid", "Leaf"}

    def test_leaf_only_itself(self, hierarchy):
        assert hierarchy.subclasses("Leaf") == {"Leaf"}

    def test_unknown_class_raises(self, hierarchy):
        with pytest.raises(ProgramError):
            hierarchy.subclasses("Ghost")


class TestLoadedTargets:
    def test_no_loaded_classes_no_targets(self, hierarchy):
        assert hierarchy.loaded_count == 0
        assert hierarchy.loaded_targets("ping") == frozenset()
        assert hierarchy.sole_loaded_target("ping") is None

    def test_resolution_through_multi_level_chain(self, hierarchy):
        # Leaf defines neither ping nor solo; loading it must surface the
        # inherited implementations, walking two superclass links for solo.
        hierarchy.mark_loaded("Leaf")
        assert hierarchy.loaded_targets("ping") == {"Mid.ping"}
        assert hierarchy.loaded_targets("solo") == {"Base.solo"}
        assert hierarchy.sole_loaded_target("ping").id == "Mid.ping"

    def test_mark_loaded_invalidates_target_cache(self, hierarchy):
        hierarchy.mark_loaded("Mid")
        assert hierarchy.loaded_targets("ping") == {"Mid.ping"}
        # A second load must not serve the now-stale cached answer.
        assert hierarchy.mark_loaded("Other")
        assert hierarchy.loaded_targets("ping") == {"Mid.ping", "Other.ping"}
        assert hierarchy.sole_loaded_target("ping") is None

    def test_reload_is_a_noop(self, hierarchy):
        assert hierarchy.mark_loaded("Mid")
        assert not hierarchy.mark_loaded("Mid")
        assert hierarchy.loaded_count == 1

    def test_loading_unknown_class_raises(self, hierarchy):
        with pytest.raises(ProgramError):
            hierarchy.mark_loaded("Ghost")

    def test_selector_not_understood_is_skipped(self, hierarchy):
        hierarchy.mark_loaded("Other")
        assert hierarchy.loaded_targets("solo") == frozenset()


class TestOverriders:
    def test_override_found(self, hierarchy):
        base_ping = hierarchy.resolve("Base", "ping")
        overriders = hierarchy.overriders(base_ping)
        assert [m.klass for m in overriders] == ["Mid"]

    def test_unrelated_impl_not_an_overrider(self, hierarchy):
        base_ping = hierarchy.resolve("Base", "ping")
        assert all(m.klass != "Other"
                   for m in hierarchy.overriders(base_ping))

    def test_no_overriders(self, hierarchy):
        solo = hierarchy.resolve("Base", "solo")
        assert hierarchy.overriders(solo) == []
