"""Unit tests for the k-CFA context-sensitive call graph."""

import pytest

from conftest import build_context_program, build_diamond_program
from repro.analysis.callgraph import RTA, build_call_graph
from repro.analysis.kcfa import (MAX_K, build_kcfa_graph, extend,
                                 strings_compatible, truncate)


class TestCallStrings:
    def test_truncate_keeps_innermost(self):
        assert truncate((1, 2, 3), 2) == (1, 2)
        assert truncate((1, 2, 3), 0) == ()
        assert truncate((), 3) == ()

    def test_extend_pushes_innermost_first(self):
        assert extend(9, (1, 2), 3) == (9, 1, 2)
        assert extend(9, (1, 2), 2) == (9, 1)
        assert extend(9, (1, 2), 0) == ()

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_truncation_commutes_with_extension(self, k):
        # push_k(s, c)[:k-1] == push_{k-1}(s, c[:k-1]) -- the identity the
        # refinement-by-construction argument rests on.
        ctx = (11, 22, 33)
        assert truncate(extend(7, ctx, k), k - 1) == \
            extend(7, truncate(ctx, k - 1), k - 1)

    def test_empty_prefix_compatible_with_everything(self):
        assert strings_compatible((), (1, 2, 3))
        assert strings_compatible((), ())

    def test_compatible_on_overlap_wildcard_beyond(self):
        assert strings_compatible((1,), (1, 2, 3))
        assert strings_compatible((1, 2, 3), (1,))
        assert not strings_compatible((1, 9), (1, 2, 3))


class TestConstruction:
    @pytest.mark.parametrize("k", [-1, MAX_K + 1])
    def test_out_of_range_k_rejected(self, k):
        program, _sites = build_diamond_program()
        with pytest.raises(ValueError):
            build_kcfa_graph(program, k=k)

    def test_precision_label_tracks_k(self):
        program, _sites = build_diamond_program()
        assert build_kcfa_graph(program, k=0).precision == "0cfa"
        assert build_kcfa_graph(program, k=2).precision == "2cfa"

    def test_entry_analyzed_under_empty_context(self):
        program, _sites = build_diamond_program()
        graph = build_kcfa_graph(program, k=2)
        assert graph.contexts[graph.entry] == ((),)

    def test_zero_cfa_has_one_context_per_method(self):
        program, _sites = build_diamond_program()
        graph = build_kcfa_graph(program, k=0)
        assert all(ctxs == ((),) for ctxs in graph.contexts.values())

    def test_diamond_dispatch_targets(self):
        program, sites = build_diamond_program()
        graph = build_kcfa_graph(program, k=1)
        # Each dispatch in Main.run sees exactly the class flowing into
        # its receiver argument -- sharper than RTA's alloc-set answer.
        assert graph.targets(sites["ping_a"]) == {"A.ping"}
        assert graph.targets(sites["ping_b"]) == {"B.ping"}
        assert graph.is_monomorphic(sites["ping_a"])


class TestRefinementChain:
    @pytest.mark.parametrize("build", [build_diamond_program,
                                       build_context_program])
    def test_each_tier_contained_in_the_previous(self, build):
        program, _sites = build()
        rta = build_call_graph(program, precision=RTA)
        graphs = [build_kcfa_graph(program, k=k) for k in (0, 1, 2)]
        all_sites = set(rta.sites) | {s for g in graphs for s in g.sites}
        for site in all_sites:
            assert graphs[0].targets(site) <= rta.targets(site)
            for coarse, fine in zip(graphs, graphs[1:]):
                assert fine.targets(site) <= coarse.targets(site)


class TestContextRescue:
    def test_zero_cfa_joins_both_flows(self, ctxprog):
        program, sites = ctxprog
        graph = build_kcfa_graph(program, k=0)
        assert graph.targets(sites["disp"]) == {"A.ping", "B.ping"}
        assert not graph.context_monomorphic(sites["disp"])

    def test_one_cfa_splits_helper_by_calling_site(self, ctxprog):
        program, sites = ctxprog
        graph = build_kcfa_graph(program, k=1)
        assert set(graph.contexts["C.helper"]) == \
            {(sites["c1"],), (sites["c2"],)}
        assert graph.targets(sites["disp"],
                             context=(sites["c1"],)) == {"A.ping"}
        assert graph.targets(sites["disp"],
                             context=(sites["c2"],)) == {"B.ping"}
        assert graph.context_monomorphic(sites["disp"])
        # The context-insensitive union is still polymorphic: the rescue
        # is purely a context-sensitivity effect.
        assert graph.targets(sites["disp"]) == {"A.ping", "B.ping"}

    def test_targets_for_prefix_joins_compatible_contexts(self, ctxprog):
        program, sites = ctxprog
        graph = build_kcfa_graph(program, k=1)
        disp = sites["disp"]
        assert graph.targets_for_prefix(disp, (sites["c1"],)) == {"A.ping"}
        assert graph.targets_for_prefix(disp, (sites["c2"],)) == {"B.ping"}
        # No known prefix -> every context is compatible -> the union.
        assert graph.targets_for_prefix(disp, ()) == {"A.ping", "B.ping"}

    def test_prefix_weight_partitions_site_weight(self, ctxprog):
        program, sites = ctxprog
        graph = build_kcfa_graph(program, k=1)
        disp = sites["disp"]
        w1 = graph.prefix_weight(disp, (sites["c1"],))
        w2 = graph.prefix_weight(disp, (sites["c2"],))
        assert w1 > 0 and w2 > 0
        assert w1 + w2 == pytest.approx(graph.site_weight(disp))

    def test_predicted_majority_follows_context(self, ctxprog):
        program, sites = ctxprog
        graph = build_kcfa_graph(program, k=1)
        disp = sites["disp"]
        assert graph.predicted_majority(disp, (sites["c1"],)) == "A.ping"
        assert graph.predicted_majority(disp, (sites["c2"],)) == "B.ping"

    def test_unknown_site_queries_are_empty(self, ctxprog):
        program, _sites = ctxprog
        graph = build_kcfa_graph(program, k=1)
        assert graph.targets(424242) == frozenset()
        assert graph.targets_for_prefix(424242, ()) == frozenset()
        assert graph.predicted_majority(424242, ()) is None
        assert graph.prefix_weight(424242, ()) == 0.0


class TestFrequencies:
    def test_context_frequencies_sum_to_site_frequency(self, ctxprog):
        program, sites = ctxprog
        graph = build_kcfa_graph(program, k=1)
        info = graph.sites[sites["disp"]]
        assert info.frequency == pytest.approx(
            sum(ct.frequency for ct in info.by_context.values()))
        assert all(ct.frequency > 0 for ct in info.by_context.values())

    def test_monomorphic_context_concentrates_weight(self, ctxprog):
        program, sites = ctxprog
        graph = build_kcfa_graph(program, k=1)
        ct = graph.sites[sites["disp"]].by_context[(sites["c1"],)]
        ((target, weight),) = ct.target_weights
        assert target == "A.ping"
        assert weight == pytest.approx(ct.frequency)


class TestSummary:
    def test_summary_counts_rescued_sites(self, ctxprog):
        program, _sites = ctxprog
        summary = build_kcfa_graph(program, k=1).summary()
        assert summary["precision"] == "1cfa"
        assert summary["k"] == 1
        assert summary["dispatched_sites"] == 1
        assert summary["monomorphic_sites"] == 0
        assert summary["context_monomorphic_sites"] == 1
        assert summary["context_rescued_sites"] == 1
        assert summary["max_contexts_per_method"] == 2
