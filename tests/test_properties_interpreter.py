"""Property-based tests for the interpreter over random straight-line
programs.

A small hypothesis strategy generates random (but always valid) method
bodies from the statement language; the properties pin down execution
invariants the rest of the system depends on: determinism, accounting
consistency, tier-cost ordering, and stack balance.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aos.cost_accounting import APP, CostAccounting
from repro.compiler.code_cache import CodeCache
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.interpreter import Machine
from repro.jvm.program import (Add, Arg, ClassDef, Const, If, Let, Local,
                               Loop, Lt, MethodDef, Mod, Mul, New, Program,
                               Return, StaticCall, Sub, VirtualCall, Work)
from repro.workloads.builder import ProgramBuilder

N_LOCALS = 4

# -- expression strategy --------------------------------------------------------

leaf_exprs = st.one_of(
    st.integers(min_value=-50, max_value=50).map(Const),
    st.integers(min_value=0, max_value=N_LOCALS - 1).map(Local),
)


def binop(children):
    ops = st.sampled_from([Add, Sub, Mul, Lt])
    return st.builds(lambda op, a, b: op(a, b), ops, children, children)


int_exprs = st.recursive(leaf_exprs, binop, max_leaves=6)

# -- statement strategy -----------------------------------------------------------

simple_stmts = st.one_of(
    st.integers(min_value=0, max_value=20).map(Work),
    st.builds(Let, st.integers(min_value=0, max_value=N_LOCALS - 1),
              int_exprs),
)


def block(children):
    lists = st.lists(children, min_size=1, max_size=3)
    ifs = st.builds(If, int_exprs, lists, lists)
    loops = st.builds(
        Loop,
        st.integers(min_value=0, max_value=4).map(Const),
        st.just(N_LOCALS - 1),
        lists)
    return st.one_of(ifs, loops)


stmts = st.recursive(simple_stmts, block, max_leaves=10)
bodies = st.lists(stmts, min_size=1, max_size=6).map(
    lambda body: body + [Return(Local(0))])


def build_program(body):
    b = ProgramBuilder("random")
    b.cls("Main")
    b.static_method("Main", "main", body, locals_=N_LOCALS)
    b.entry("Main.main")
    return b.build()


def execute(body, costs=None):
    program = build_program(body)
    costs = costs or CostModel()
    machine = Machine(program, ClassHierarchy(program), CodeCache(costs),
                      costs, CostAccounting())
    value = machine.run()
    return machine, value


class TestRandomPrograms:
    @settings(max_examples=60, deadline=None)
    @given(bodies)
    def test_deterministic(self, body):
        m1, v1 = execute(body)
        m2, v2 = execute(body)
        assert v1 == v2
        assert m1.clock == m2.clock

    @settings(max_examples=60, deadline=None)
    @given(bodies)
    def test_clock_equals_accounting(self, body):
        machine, _value = execute(body)
        assert abs(machine.clock - machine.accounting.total) < 1e-6

    @settings(max_examples=60, deadline=None)
    @given(bodies)
    def test_stack_balanced_after_run(self, body):
        machine, _value = execute(body)
        assert machine.stack == []

    @settings(max_examples=60, deadline=None)
    @given(bodies)
    def test_app_cycles_track_work(self, body):
        machine, _value = execute(body)
        costs = machine.costs
        expected = machine.stats.work_cycles * costs.baseline_exec_mult
        assert machine.accounting.cycles[APP] >= expected - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(bodies)
    def test_baseline_slower_than_hypothetical_opt(self, body):
        slow_costs = CostModel(baseline_exec_mult=4.0)
        fast_costs = CostModel(baseline_exec_mult=1.5)
        slow, _ = execute(body, slow_costs)
        fast, _ = execute(body, fast_costs)
        assert slow.accounting.cycles[APP] >= \
            fast.accounting.cycles[APP] - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(bodies)
    def test_result_is_integer(self, body):
        _machine, value = execute(body)
        assert isinstance(value, int)
