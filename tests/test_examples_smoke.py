"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken promise.
Each runs in-process with a temporarily reduced workload where the script
supports it (they all finish in seconds regardless).
"""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", []),
    ("examples/policy_comparison.py", ["compress", "2"]),
    ("examples/phase_shift.py", []),
    ("examples/imprecision_policy.py", ["db"]),
    ("examples/class_loading.py", []),
    ("examples/offline_vs_online.py", ["jess", "fixed", "2"]),
]


@pytest.mark.parametrize("path,argv", EXAMPLES,
                         ids=[p.split("/")[-1] for p, _ in EXAMPLES])
def test_example_runs(path, argv, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path] + argv)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path} printed nothing"
