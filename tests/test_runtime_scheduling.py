"""Tests for the adaptive runtime's tick scheduling and sampling."""

import pytest

from repro.aos.runtime import AdaptiveRuntime
from repro.jvm.costs import CostModel, DEFAULT_COSTS
from repro.policies import make_policy
from repro.workloads.hashmap_example import build as build_hashmap


def runtime_for(iterations=2000, costs=None, policy=("cins", 1), phase=0.0):
    built = build_hashmap(iterations=iterations)
    return AdaptiveRuntime(built.program, make_policy(*policy),
                           costs or DEFAULT_COSTS, sample_phase=phase)


class TestSampling:
    def test_sample_count_tracks_interval(self):
        costs = DEFAULT_COSTS
        runtime = runtime_for(costs=costs)
        result = runtime.run()
        expected = result.total_cycles / costs.sample_interval
        # Timer jitter averages to the nominal interval (+/- 30%).
        assert expected * 0.7 < result.samples_taken < expected * 1.3

    def test_denser_sampling_with_smaller_interval(self):
        sparse = runtime_for(costs=DEFAULT_COSTS.replace(
            sample_interval=8_000)).run()
        dense = runtime_for(costs=DEFAULT_COSTS.replace(
            sample_interval=1_000)).run()
        assert dense.samples_taken > 2 * sparse.samples_taken

    def test_trace_samples_at_most_method_samples(self):
        result = runtime_for().run()
        assert result.traces_recorded <= result.samples_taken

    def test_phase_changes_outcome_slightly(self):
        a = runtime_for(phase=0.0).run()
        b = runtime_for(phase=0.5).run()
        # Different phases give different-but-similar runs.
        assert a.total_cycles != b.total_cycles
        assert abs(a.total_cycles - b.total_cycles) < 0.2 * a.total_cycles

    def test_same_phase_is_deterministic(self):
        a = runtime_for(phase=0.25).run()
        b = runtime_for(phase=0.25).run()
        assert a.total_cycles == b.total_cycles
        assert a.opt_code_bytes == b.opt_code_bytes
        assert a.guard_tests == b.guard_tests


class TestOrganizerScheduling:
    def test_decay_runs_scale_with_run_length(self):
        short = runtime_for(iterations=500)
        short.run()
        long = runtime_for(iterations=8000)
        long.run()
        assert long.decay_organizer.runs >= short.decay_organizer.runs

    def test_buffer_capacity_triggers_early_drain(self):
        # A tiny buffer forces the DCG organizer to run between wakes, so
        # the listener buffer never exceeds the capacity.
        costs = DEFAULT_COSTS.replace(trace_buffer_capacity=4)
        runtime = runtime_for(costs=costs)
        real_drain = runtime.trace_listener.drain
        max_seen = {"n": 0}

        def tracking_drain():
            max_seen["n"] = max(max_seen["n"],
                                len(runtime.trace_listener.buffer))
            return real_drain()

        runtime.trace_listener.drain = tracking_drain
        runtime.run()
        assert max_seen["n"] <= 4

    def test_compilations_happen_at_wakes(self):
        runtime = runtime_for()
        result = runtime.run()
        assert result.opt_compilations == \
            runtime.compilation_thread.compilations_done

    def test_controller_decisions_counted(self):
        runtime = runtime_for()
        runtime.run()
        assert runtime.controller.decisions_evaluated >= \
            runtime.controller.plans_created


class TestCostOverrides:
    def test_disabling_decay(self):
        costs = DEFAULT_COSTS.replace(decay_period=10 ** 12)
        runtime = runtime_for(costs=costs)
        runtime.run()
        assert runtime.decay_organizer.runs == 0

    def test_higher_threshold_fewer_rules(self):
        low = runtime_for(costs=DEFAULT_COSTS.replace(
            hot_edge_threshold=0.005)).run()
        high = runtime_for(costs=DEFAULT_COSTS.replace(
            hot_edge_threshold=0.10)).run()
        assert high.rule_count <= low.rule_count
