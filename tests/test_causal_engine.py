"""The causal experiment grid: keys, fingerprints, runs, and resume."""

import pytest

from repro.causal.engine import (CausalConfig, baseline_key,
                                 causal_fingerprint, experiment_key,
                                 parse_key, run_causal)
from repro.experiments.cell_cache import CellCache
from repro.experiments.runner import run_single
from repro.jvm.errors import ConfigError

#: One tiny grid shared by the expensive tests (module-scoped fixture).
TINY = CausalConfig(benchmarks=("jess",), families=("cins",),
                    components=("compile",), factors=(1.0,),
                    seeds=2, scale=0.04, jobs=1)


@pytest.fixture(scope="module")
def tiny_results():
    return run_causal(TINY)


class TestKeys:
    def test_roundtrip_experiment(self):
        key = experiment_key("jess", "cins", "compile", 0.25, 2)
        assert parse_key(key) == ("jess", "cins", "compile", 0.25, 2)

    def test_roundtrip_baseline(self):
        key = baseline_key("db", "fixed", 1)
        assert parse_key(key) == ("db", "fixed", None, 0.0, 1)

    def test_keys_are_sweep_shaped(self):
        key = experiment_key("jess", "cins", "guard", 0.5, 0)
        assert isinstance(key, tuple) and len(key) == 3
        assert isinstance(key[1], str) and isinstance(key[2], int)


class TestConfig:
    def test_cells_cover_baselines_and_experiments(self):
        cells = TINY.cells()
        # 2 baseline seeds + 1 component x 1 factor x 2 seeds.
        assert len(cells) == 4
        assert cells[0] == baseline_key("jess", "cins", 0)

    def test_unknown_component_rejected(self):
        config = CausalConfig(components=("compiler",))
        with pytest.raises(ConfigError):
            config.validate()

    def test_bad_factor_rejected(self):
        config = CausalConfig(factors=(0.0,))
        with pytest.raises(ConfigError):
            config.validate()

    def test_defaults_are_valid(self):
        CausalConfig().validate()


class TestFingerprints:
    def test_distinct_per_axis(self):
        base = causal_fingerprint("jess", "cins", 2, "guard", 0.5, 0,
                                  0.0, 1.0)
        assert base != causal_fingerprint("jess", "cins", 2, "guard", 0.5,
                                          1, 0.0, 1.0)  # seed
        assert base != causal_fingerprint("jess", "cins", 2, "guard",
                                          0.25, 0, 0.0, 1.0)  # factor
        assert base != causal_fingerprint("jess", "cins", 2, "compile",
                                          0.5, 0, 0.0, 1.0)  # component
        assert base != causal_fingerprint("jess", "cins", 2, None, 0.0, 0,
                                          0.0, 1.0)  # baseline
        assert base == causal_fingerprint("jess", "cins", 2, "guard", 0.5,
                                          0, 0.0, 1.0)  # deterministic


class TestRunCausal:
    def test_grid_completes_with_progress_points(self, tiny_results):
        assert len(tiny_results.cells) == 4
        assert not tiny_results.failures
        for result in tiny_results.cells.values():
            assert result.progress_points is not None

    def test_baseline_cell_matches_plain_run(self, tiny_results):
        base = tiny_results.baseline("jess", "cins", 0)
        plain = run_single("jess", "cins", TINY.depth, phase=TINY.phase,
                           scale=TINY.scale)
        assert base.total_cycles == plain.total_cycles

    def test_speedup_makes_experiment_faster(self, tiny_results):
        # A free compiler must not make the run slower.
        for seed in range(TINY.seeds):
            base = tiny_results.baseline("jess", "cins", seed)
            exp = tiny_results.experiment("jess", "cins", "compile", 1.0,
                                          seed)
            assert exp.total_cycles < base.total_cycles

    def test_seeds_differ(self, tiny_results):
        first = tiny_results.baseline("jess", "cins", 0)
        second = tiny_results.baseline("jess", "cins", 1)
        assert first.total_cycles != second.total_cycles

    def test_pairs_returns_all_seeds(self, tiny_results):
        pairs = tiny_results.pairs("jess", "cins", "compile", 1.0)
        assert [seed for seed, _b, _e in pairs] == [0, 1]


class TestCacheResume:
    def test_resume_serves_identical_results(self, tiny_results, tmp_path):
        cache = CellCache(str(tmp_path))
        fresh = run_causal(TINY, cache=cache)
        assert set(fresh.cells) == set(tiny_results.cells)

        resumed = run_causal(TINY, cache=cache)
        for key, result in resumed.cells.items():
            assert result.total_cycles == fresh.cells[key].total_cycles
            assert result.progress_points == fresh.cells[key].progress_points

    def test_cached_cell_without_progress_points_reruns(self, tmp_path):
        from repro.causal.engine import config_fingerprint
        import dataclasses

        cache = CellCache(str(tmp_path))
        first = run_causal(TINY, cache=cache)
        key = baseline_key("jess", "cins", 0)
        # Poison one cached cell as if written by a non-causal run.
        stripped = dataclasses.replace(first.cells[key],
                                       progress_points=None)
        cache.store(config_fingerprint(TINY, key), key, stripped)

        resumed = run_causal(TINY, cache=cache)
        assert resumed.cells[key].progress_points is not None
