"""Additional coverage for pinned-rule (offline) runs interacting with the
rest of the AOS."""

import pytest

from repro.experiments.offline import (collect_full_profile,
                                       derive_offline_rules,
                                       run_with_pinned_rules)
from repro.jvm.costs import DEFAULT_COSTS

SCALE = 0.12


class TestPinnedRulesInteractions:
    @pytest.fixture(scope="class")
    def pinned(self):
        dcg, online = collect_full_profile("db", "fixed", 2, scale=SCALE)
        rules = derive_offline_rules(dcg)
        offline = run_with_pinned_rules("db", "fixed", 2, rules,
                                        scale=SCALE)
        return online, offline, rules

    def test_offline_first_compiles_use_final_rules(self, pinned):
        _online, offline, rules = pinned
        # With rules pinned from cycle zero, every compiled method was
        # compiled under the same fingerprint: no recompiles beyond v1
        # except invalidation/OSR-driven ones.
        assert offline.opt_compilations > 0

    def test_offline_guard_behaviour_consistent(self, pinned):
        online, offline, _rules = pinned
        # db's pinned run should eliminate (or nearly eliminate) the
        # dispatch thrash the online run pays during its transient.
        assert offline.dispatches <= online.dispatches * 1.2

    def test_rules_independent_of_production_run(self, pinned):
        _online, offline, rules = pinned
        assert offline.rule_count == len(rules)

    def test_table1_counts_unchanged_by_pinning(self, pinned):
        online, offline, _rules = pinned
        assert online.methods_compiled == offline.methods_compiled
        assert online.classes_loaded == offline.classes_loaded
