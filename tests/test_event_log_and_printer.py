"""Tests for the AOS event log and the inline-tree pretty printer."""

import pytest

from repro.aos.event_log import (COMPILE, DECAY, EVENT_KINDS, Event,
                                 EventLog, INVALIDATE, OSR, RULE_ADDED,
                                 RULE_RETIRED, attach_event_log,
                                 format_detail)
from repro.aos.runtime import AdaptiveRuntime
from repro.compiler.tree_printer import render_code_cache, render_inline_tree
from repro.policies import make_policy
from repro.workloads import lazy_loading
from repro.workloads.hashmap_example import build as build_hashmap


class TestEventLogUnit:
    def test_record_and_query(self):
        log = EventLog()
        log.record(100.0, COMPILE, "C.m", "v1")
        log.record(200.0, COMPILE, "C.n", "v1")
        log.record(300.0, OSR, "C.m")
        assert len(log) == 3
        assert [e.subject for e in log.of_kind(COMPILE)] == ["C.m", "C.n"]
        assert [e.kind for e in log.about("C.m")] == [COMPILE, OSR]
        assert [e.clock for e in log.between(150.0, 250.0)] == [200.0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventLog().record(0.0, "party", "x")

    def test_counts(self):
        log = EventLog()
        log.record(1.0, COMPILE, "a")
        log.record(2.0, COMPILE, "b")
        counts = log.counts()
        assert counts[COMPILE] == 2
        assert counts[DECAY] == 0

    def test_rendering(self):
        log = EventLog()
        log.record(1.0, COMPILE, "C.m", "v1 hot 40bc")
        timeline = log.render_timeline()
        assert "C.m" in timeline and "v1 hot" in timeline
        summary = log.render_summary()
        assert "compile" in summary

    def test_structured_detail_accepted_and_flattened(self):
        log = EventLog()
        log.record(1.0, COMPILE, "C.m",
                   {"version": "v1", "reason": "hot", "inlined_bc": 40})
        [event] = log.events
        assert event.detail == {"version": "v1", "reason": "hot",
                                "inlined_bc": 40}
        assert event.detail_text == "version=v1 reason=hot inlined_bc=40"
        assert "version=v1" in log.render_timeline()

    def test_format_detail_passthrough_for_strings(self):
        assert format_detail("plain text") == "plain text"
        assert format_detail({}) == ""
        assert Event(0.0, COMPILE, "C.m", "legacy").detail_text == "legacy"

    def test_record_copies_mutable_detail(self):
        log = EventLog()
        payload = {"selector": "poly"}
        log.record(1.0, INVALIDATE, "C.m", payload)
        payload["selector"] = "mutated"
        assert log.events[0].detail == {"selector": "poly"}

    def test_kind_vocabulary_shared_with_provenance(self):
        from repro.provenance import EventKind
        assert set(EVENT_KINDS) == {kind.value for kind in EventKind}
        assert RULE_ADDED == EventKind.RULE_ADDED.value
        assert RULE_RETIRED == EventKind.RULE_RETIRED.value


class TestEventLogIntegration:
    @pytest.fixture(scope="class")
    def logged_run(self):
        built = build_hashmap(iterations=4000)
        runtime = AdaptiveRuntime(built.program, make_policy("fixed", 2))
        log = attach_event_log(runtime)
        result = runtime.run()
        return runtime, log, result

    def test_compiles_logged(self, logged_run):
        runtime, log, result = logged_run
        assert len(log.of_kind(COMPILE)) == result.opt_compilations

    def test_rules_logged(self, logged_run):
        _runtime, log, result = logged_run
        added = log.of_kind(RULE_ADDED)
        assert len(added) >= result.rule_count

    def test_logging_is_cycle_neutral(self):
        built = build_hashmap(iterations=2000)
        plain = AdaptiveRuntime(built.program, make_policy("fixed", 2))
        plain_result = plain.run()

        built2 = build_hashmap(iterations=2000)
        logged = AdaptiveRuntime(built2.program, make_policy("fixed", 2))
        attach_event_log(logged)
        logged_result = logged.run()
        assert logged_result.total_cycles == plain_result.total_cycles

    def test_invalidation_logged(self):
        built = lazy_loading.build(iterations=15_000)
        runtime = AdaptiveRuntime(built.program, make_policy("cins", 1))
        log = attach_event_log(runtime)
        result = runtime.run()
        assert len(log.of_kind(INVALIDATE)) == result.invalidations
        assert result.invalidations >= 1

    def test_events_chronological(self, logged_run):
        _runtime, log, _result = logged_run
        clocks = [e.clock for e in log.events]
        assert clocks == sorted(clocks)


class TestTreePrinter:
    @pytest.fixture(scope="class")
    def runtime(self):
        built = build_hashmap(iterations=4000)
        rt = AdaptiveRuntime(built.program, make_policy("fixed", 2))
        rt.run()
        return rt

    def test_render_single_tree(self, runtime):
        compiled = runtime.code_cache.opt_methods()[0]
        out = render_inline_tree(compiled)
        assert compiled.method.id in out
        assert "bc inlined" in out

    def test_guarded_sites_show_fallback(self, runtime):
        out = render_code_cache(runtime.code_cache, top=10)
        if "guarded" in out:
            assert "fallback -> virtual dispatch" in out

    def test_render_cache_orders_by_size(self, runtime):
        out = render_code_cache(runtime.code_cache, top=3)
        assert out.count("bc inlined") <= 3

    def test_empty_cache(self):
        from repro.compiler.code_cache import CodeCache
        from repro.jvm.costs import CostModel
        out = render_code_cache(CodeCache(CostModel()))
        assert "no optimized methods" in out
