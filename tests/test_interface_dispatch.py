"""Tests for interface invocation (``invokeinterface`` semantics)."""

import pytest

from repro.aos.cost_accounting import APP, CostAccounting
from repro.compiler.code_cache import CodeCache
from repro.compiler.oracle import InlineOracle
from repro.jvm.costs import CostModel
from repro.jvm.errors import ProgramError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.interpreter import Machine
from repro.jvm.program import (Arg, Const, InterfaceCall, Local, Loop, New,
                               Return, StaticCall, Work)
from repro.profiles.trace import InlineRule, TraceKey
from repro.workloads.builder import ProgramBuilder


def build_program(iterations=1):
    b = ProgramBuilder("iface")
    b.cls("Runnable")  # the interface contract
    b.cls("TaskA", interfaces=("Runnable",))
    b.cls("TaskB", interfaces=("Runnable",))
    b.cls("Main")
    b.method("TaskA", "go", [Work(5), Return(Const(1))], params=1)
    b.method("TaskB", "go", [Work(5), Return(Const(2))], params=1)
    go_site = b.site()
    b.static_method("Main", "exec", [
        InterfaceCall(go_site, "go", Arg(0), dst=0),
        Return(Local(0)),
    ], params=1, locals_=2)
    b.static_method("Main", "main", [
        New(0, "TaskA"),
        New(1, "TaskB"),
        Loop(Const(iterations), 2, [
            StaticCall(100, "Main.exec", [Local(0)], dst=3),
            StaticCall(101, "Main.exec", [Local(1)], dst=3),
        ]),
        Return(Local(3)),
    ], locals_=6)
    b.entry("Main.main")
    return b.build(), go_site


def machine_for(program, costs=None):
    costs = costs or CostModel()
    hierarchy = ClassHierarchy(program)
    return Machine(program, hierarchy, CodeCache(costs), costs,
                   CostAccounting()), costs


class TestExecution:
    def test_dispatches_on_dynamic_class(self):
        program, _site = build_program()
        machine, _costs = machine_for(program)
        assert machine.run() == 2  # last call dispatched TaskB.go

    def test_interface_dispatch_costs_more_than_virtual(self):
        program, _site = build_program(iterations=50)
        cheap = CostModel().replace(interface_dispatch=9)
        pricey = CostModel().replace(interface_dispatch=30)
        m1, _ = machine_for(program, cheap)
        m1.run()
        program2, _ = build_program(iterations=50)
        m2, _ = machine_for(program2, pricey)
        m2.run()
        assert m2.accounting.cycles[APP] > m1.accounting.cycles[APP]

    def test_dispatch_counted(self):
        program, _site = build_program(iterations=10)
        machine, _ = machine_for(program)
        machine.run()
        assert machine.stats.dispatches == 20
        assert machine.stats.virtual_calls == 20


class TestValidation:
    def test_unknown_interface_rejected(self):
        b = ProgramBuilder("bad")
        b.cls("C", interfaces=("Ghost",))
        b.static_method("C", "main", [Return(Const(0))])
        b.entry("C.main")
        with pytest.raises(ProgramError):
            b.build()

    def test_unknown_selector_rejected(self):
        b = ProgramBuilder("bad")
        b.cls("C")
        b.static_method("C", "main",
                        [InterfaceCall(0, "ghost", Arg(0))], params=1)
        b.entry("C.main")
        with pytest.raises(ProgramError):
            b.build()

    def test_site_kind_recorded(self):
        program, site = build_program()
        assert program.site_location(site) == ("Main.exec", "interface")


class TestOracle:
    def test_interface_site_guarded_by_profile(self):
        program, site = build_program()
        hierarchy = ClassHierarchy(program)
        hierarchy.mark_loaded("TaskA")
        hierarchy.mark_loaded("TaskB")
        costs = CostModel()
        rules = [InlineRule(TraceKey("TaskA.go", (("Main.exec", site),)),
                            10.0, 0.05),
                 InlineRule(TraceKey("TaskB.go", (("Main.exec", site),)),
                            10.0, 0.05)]
        oracle = InlineOracle(program, hierarchy, costs, rules)
        root = program.method("Main.exec")
        decision = oracle.decide(root.body[0], (("Main.exec", site),), 0,
                                 20, root)
        assert decision.inline and decision.guarded
        assert sorted(t.id for t in decision.targets) == \
            ["TaskA.go", "TaskB.go"]
