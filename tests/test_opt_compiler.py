"""Unit tests for the optimizing compiler's inline-tree construction."""

import pytest

from repro.compiler.code_cache import CodeCache
from repro.compiler.compiled_method import DIRECT, GUARDED, InlineNode
from repro.compiler.opt_compiler import OptCompiler, iter_call_sites
from repro.compiler.oracle import InlineOracle
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (Arg, Const, If, Local, Loop, Return,
                               StaticCall, VirtualCall, Work)
from repro.profiles.trace import InlineRule, TraceKey
from repro.workloads.builder import ProgramBuilder


def rule_for(callee, *pairs, weight=10.0):
    return InlineRule(TraceKey(callee, tuple(pairs)), weight, 0.05)


def build_chain_program():
    """root -> mid (medium) -> leaf (tiny); poly site inside mid."""
    b = ProgramBuilder("chain")
    b.cls("C")
    b.cls("Base")
    b.cls("A", superclass="Base")
    b.cls("B", superclass="Base")
    b.method("A", "poly", [Work(5), Return(Const(1))], params=1)
    b.method("B", "poly", [Work(5), Return(Const(2))], params=1)

    b.method("C", "leaf", [Work(4), Return(Const(0))], params=0, static=True)

    leaf_site = 100
    poly_site = 101
    b.method("C", "mid", [
        Work(30),
        StaticCall(leaf_site, "C.leaf", dst=0),
        VirtualCall(poly_site, "poly", Arg(0), dst=1),
        Return(Const(0)),
    ], params=1, static=True)

    mid_site = 102
    b.method("C", "root", [
        Work(10),
        StaticCall(mid_site, "C.mid", [Arg(0)], dst=0),
        Return(Const(0)),
    ], params=1, static=True)
    # The tests compile C.root directly; the entry only needs to make the
    # program well-formed (a runnable entry takes no parameters).
    b.method("C", "main", [
        StaticCall(103, "C.root", [Const(0)], dst=0),
        Return(Local(0)),
    ], params=0, static=True)
    b.entry("C.main")
    program = b.build()
    return program, {"leaf": leaf_site, "poly": poly_site, "mid": mid_site}


@pytest.fixture
def chain():
    return build_chain_program()


def compile_root(chain, rules=(), costs=None):
    program, sites = chain
    costs = costs or CostModel()
    hierarchy = ClassHierarchy(program)
    oracle = InlineOracle(program, hierarchy, costs, rules)
    compiler = OptCompiler(program, hierarchy, costs)
    compiled = compiler.compile(program.method("C.root"), oracle, version=1)
    return compiled, sites


class TestIterCallSites:
    def test_finds_nested_calls(self):
        body = [
            Loop(Const(2), 0, [
                If(Arg(0), [StaticCall(1, "C.m")],
                   [VirtualCall(2, "s", Arg(0))]),
            ]),
            StaticCall(3, "C.m"),
        ]
        sites = [stmt.site for stmt in iter_call_sites(body)]
        assert sites == [1, 2, 3]


class TestInlineTree:
    def test_no_rules_no_medium_inline(self, chain):
        compiled, sites = compile_root(chain)
        assert sites["mid"] not in compiled.root.decisions
        assert compiled.inlined_bytecodes == \
            compiled.method.bytecodes

    def test_rule_inlines_medium_chain(self, chain):
        rules = [rule_for("C.mid", ("C.root", 102))]
        compiled, sites = compile_root(chain, rules)
        decision = compiled.root.decisions[sites["mid"]]
        assert decision.kind == DIRECT
        # Inside the inlined mid, the tiny leaf is inlined too.
        mid_node = decision.sole.node
        assert sites["leaf"] in mid_node.decisions
        assert mid_node.depth == 1
        assert mid_node.decisions[sites["leaf"]].sole.node.depth == 2

    def test_guarded_inline_inside_inlined_body(self, chain):
        rules = [rule_for("C.mid", ("C.root", 102)),
                 rule_for("A.poly", ("C.mid", 101), ("C.root", 102))]
        compiled, sites = compile_root(chain, rules)
        mid_node = compiled.root.decisions[sites["mid"]].sole.node
        poly_decision = mid_node.decisions[sites["poly"]]
        assert poly_decision.kind == GUARDED
        assert poly_decision.targets() == ["A.poly"]

    def test_context_of_nested_site_includes_chain(self, chain):
        # A rule requiring the *wrong* outer context must not fire.
        rules = [rule_for("C.mid", ("C.root", 102)),
                 rule_for("A.poly", ("C.mid", 101), ("C.other", 999))]
        compiled, sites = compile_root(chain, rules)
        mid_node = compiled.root.decisions[sites["mid"]].sole.node
        assert sites["poly"] not in mid_node.decisions

    def test_inlined_bytecodes_accumulate(self, chain):
        program, _ = chain
        rules = [rule_for("C.mid", ("C.root", 102))]
        compiled, _sites = compile_root(chain, rules)
        assert compiled.inlined_bytecodes > program.method("C.root").bytecodes

    def test_code_bytes_and_compile_cycles_scale(self, chain):
        costs = CostModel()
        compiled, _ = compile_root(chain, costs=costs)
        assert compiled.code_bytes == \
            compiled.inlined_bytecodes * costs.opt_bytes_per_bc
        assert compiled.compile_cycles == \
            compiled.inlined_bytecodes * costs.opt_compile_cycles_per_bc

    def test_version_recorded(self, chain):
        compiled, _ = compile_root(chain)
        assert compiled.version == 1


class TestCompiledMethodQueries:
    def test_inlined_edges(self, chain):
        rules = [rule_for("C.mid", ("C.root", 102))]
        compiled, sites = compile_root(chain, rules)
        edges = compiled.inlined_edges()
        assert ("C.root", sites["mid"], "C.mid") in edges
        assert ("C.mid", sites["leaf"], "C.leaf") in edges

    def test_has_inlined(self, chain):
        rules = [rule_for("C.mid", ("C.root", 102))]
        compiled, sites = compile_root(chain, rules)
        assert compiled.has_inlined(sites["mid"], "C.mid")
        assert compiled.has_inlined(sites["leaf"], "C.leaf")
        assert not compiled.has_inlined(sites["poly"], "A.poly")

    def test_walk_visits_all_nodes(self, chain):
        rules = [rule_for("C.mid", ("C.root", 102))]
        compiled, _ = compile_root(chain, rules)
        methods = [node.method.id for node in compiled.root.walk()]
        assert methods[0] == "C.root"
        assert "C.mid" in methods and "C.leaf" in methods

    def test_node_inlined_bytecodes_matches_total(self, chain):
        rules = [rule_for("C.mid", ("C.root", 102))]
        compiled, _ = compile_root(chain, rules)
        # The tree's own recursive count uses raw bytecodes; the compiler's
        # total uses constant-arg-discounted estimates, so tree >= total.
        assert compiled.root.inlined_bytecodes() >= \
            compiled.inlined_bytecodes


class TestCodeCache:
    def test_install_and_replace(self, chain):
        costs = CostModel()
        cache = CodeCache(costs)
        compiled1, _ = compile_root(chain)
        cache.install(compiled1)
        assert cache.opt_version("C.root") is compiled1
        assert cache.next_version("C.root") == 2

        compiled2, _ = compile_root(chain)
        compiled2.version = 2
        cache.install(compiled2)
        assert cache.opt_version("C.root") is compiled2
        # Cumulative metrics keep both versions; live only the last.
        assert cache.opt_code_bytes == \
            compiled1.code_bytes + compiled2.code_bytes
        assert cache.live_opt_code_bytes() == compiled2.code_bytes
        assert cache.opt_compilations == 2
