"""Unit tests for code-cache metrics and invalidation bookkeeping."""

import pytest

from repro.compiler.code_cache import CodeCache
from repro.compiler.compiled_method import CompiledMethod, InlineNode
from repro.jvm.costs import CostModel
from repro.jvm.program import Const, MethodDef, Return, Work


def method(name, work=30):
    return MethodDef("C", name, 0, True, [Work(work), Return(Const(0))])


def compiled(m, version=1):
    return CompiledMethod(InlineNode(m, 0), m.bytecodes, m.bytecodes * 6,
                          m.bytecodes * 14, version)


@pytest.fixture
def cache():
    return CodeCache(CostModel())


class TestBaselineTier:
    def test_compile_baseline_once(self, cache):
        m = method("m")
        cycles = cache.compile_baseline(m)
        assert cycles > 0
        assert cache.has_baseline("C.m")
        assert cache.compile_baseline(m) == 0.0  # idempotent
        assert cache.baseline_compiled_methods == 1

    def test_table1_metrics(self, cache):
        a, b = method("a", 10), method("b", 20)
        cache.compile_baseline(a)
        cache.compile_baseline(b)
        assert cache.dynamically_compiled_methods == 2
        assert cache.dynamically_compiled_bytecodes == \
            a.bytecodes + b.bytecodes

    def test_baseline_code_bytes(self, cache):
        m = method("m")
        cache.compile_baseline(m)
        costs = CostModel()
        assert cache.baseline_code_bytes == \
            m.bytecodes * costs.baseline_bytes_per_bc


class TestInvalidation:
    def test_invalidate_removes_live_code(self, cache):
        m = method("m")
        cm = compiled(m)
        cache.install(cm)
        assert cache.invalidate("C.m")
        assert cache.opt_version("C.m") is None
        assert cache.invalidated_compilations == 1

    def test_invalidate_missing_is_noop(self, cache):
        assert not cache.invalidate("C.ghost")
        assert cache.invalidated_compilations == 0

    def test_version_counter_survives_invalidation(self, cache):
        m = method("m")
        cache.install(compiled(m, version=1))
        cache.invalidate("C.m")
        # The next compile is observably a *new* version.
        assert cache.next_version("C.m") == 2

    def test_cumulative_metrics_keep_invalidated_code(self, cache):
        m = method("m")
        cm = compiled(m)
        cache.install(cm)
        cache.invalidate("C.m")
        assert cache.opt_code_bytes == cm.code_bytes
        assert cache.live_opt_code_bytes() == 0
