"""Unit tests for the dynamic call graph (weights, decay, dilution)."""

import pytest

from repro.profiles.dcg import PRUNE_EPSILON, DynamicCallGraph
from repro.profiles.trace import TraceKey


def key(callee, *pairs):
    return TraceKey(callee, tuple(pairs))


@pytest.fixture
def dcg():
    return DynamicCallGraph()


class TestIngestion:
    def test_add_accumulates(self, dcg):
        k = key("D", ("C", 1))
        dcg.add(k)
        dcg.add(k, 2.0)
        assert dcg.weight(k) == 3.0
        assert dcg.total_weight == 3.0
        assert dcg.samples_added == 2

    def test_len_counts_distinct_keys(self, dcg):
        dcg.add(key("D", ("C", 1)))
        dcg.add(key("D", ("C", 1)))
        dcg.add(key("E", ("C", 2)))
        assert len(dcg) == 2

    def test_weight_of_absent_key(self, dcg):
        assert dcg.weight(key("D", ("C", 1))) == 0.0


class TestHotTraces:
    def test_threshold_is_strict(self, dcg):
        # One trace at exactly the cutoff must NOT be hot ("more than").
        dcg.add(key("A", ("C", 1)), 1.0)
        dcg.add(key("B", ("C", 2)), 99.0)
        hot = dcg.hot_traces(0.01)
        assert key("A", ("C", 1)) not in [k for k, _ in hot]

    def test_hot_sorted_by_weight(self, dcg):
        dcg.add(key("A", ("C", 1)), 10.0)
        dcg.add(key("B", ("C", 2)), 30.0)
        hot = dcg.hot_traces(0.1)
        assert [k.callee for k, _ in hot] == ["B", "A"]

    def test_empty_dcg(self, dcg):
        assert dcg.hot_traces(0.015) == []

    def test_profile_dilution(self, dcg):
        """The paper's Section 4 effect: splitting an edge's weight across
        contexts pushes every share below the threshold."""
        # Context-insensitive: one edge with 6% share -> hot.
        insensitive = DynamicCallGraph()
        insensitive.add(key("D", ("C", 1)), 6.0)
        insensitive.add(key("X", ("Y", 9)), 94.0)
        assert len(insensitive.hot_traces(0.015)) >= 1

        # Context-sensitive: same weight split over 5 grand-callers.
        for i in range(5):
            dcg.add(key("D", ("C", 1), (f"G{i}", i)), 1.2)
        dcg.add(key("X", ("Y", 9)), 94.0)
        hot = [k for k, _ in dcg.hot_traces(0.015)]
        assert all(k.callee != "D" for k in hot)


class TestProjections:
    def test_edge_weights_aggregate_contexts(self, dcg):
        dcg.add(key("D", ("C", 1), ("A", 2)), 3.0)
        dcg.add(key("D", ("C", 1), ("B", 3)), 4.0)
        edges = dcg.edge_weights()
        assert edges[key("D", ("C", 1))] == 7.0

    def test_site_target_distribution(self, dcg):
        dcg.add(key("D1", ("C", 1)), 3.0)
        dcg.add(key("D2", ("C", 1), ("A", 2)), 5.0)
        dcg.add(key("D1", ("C", 9)), 7.0)  # different site
        dist = dcg.site_target_distribution("C", 1)
        assert dist == {"D1": 3.0, "D2": 5.0}

    def test_unskewed_sites_flagged(self, dcg):
        dcg.add(key("D1", ("C", 1)), 5.0)
        dcg.add(key("D2", ("C", 1)), 5.0)
        assert ("C", 1) in dcg.polymorphic_unskewed_sites()

    def test_skewed_site_not_flagged(self, dcg):
        dcg.add(key("D1", ("C", 1)), 9.0)
        dcg.add(key("D2", ("C", 1)), 1.0)
        assert ("C", 1) not in dcg.polymorphic_unskewed_sites()

    def test_monomorphic_site_not_flagged(self, dcg):
        dcg.add(key("D1", ("C", 1)), 10.0)
        assert dcg.polymorphic_unskewed_sites() == []


class TestDecay:
    def test_decay_scales_weights(self, dcg):
        k = key("D", ("C", 1))
        dcg.add(k, 10.0)
        dcg.decay(0.5)
        assert dcg.weight(k) == 5.0
        assert dcg.total_weight == pytest.approx(5.0)

    def test_decay_prunes_tiny_entries(self, dcg):
        dcg.add(key("D", ("C", 1)), PRUNE_EPSILON)
        dcg.decay(0.5)
        assert len(dcg) == 0
        assert dcg.total_weight == pytest.approx(0.0, abs=1e-9)

    def test_decay_returns_processed_count(self, dcg):
        dcg.add(key("D", ("C", 1)), 10.0)
        dcg.add(key("E", ("C", 2)), 10.0)
        assert dcg.decay(0.9) == 2

    def test_invalid_rate_rejected(self, dcg):
        with pytest.raises(ValueError):
            dcg.decay(0.0)
        with pytest.raises(ValueError):
            dcg.decay(1.5)

    def test_rate_one_is_identity_for_big_entries(self, dcg):
        dcg.add(key("D", ("C", 1)), 10.0)
        dcg.decay(1.0)
        assert dcg.weight(key("D", ("C", 1))) == 10.0
