"""The causal component registry and virtual-speedup transform."""

import dataclasses

import pytest

from repro.causal.components import (CAUSAL_COMPONENTS, accounted_share,
                                     apply_virtual_speedup, component_names,
                                     get_component)
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.errors import ConfigError


class TestRegistry:
    def test_names_are_unique_and_ordered(self):
        names = component_names()
        assert len(names) == len(set(names))
        assert len(names) >= 4  # the report must rank at least four

    def test_every_cost_field_exists_on_the_model(self):
        valid = {f.name for f in dataclasses.fields(CostModel)}
        for component in CAUSAL_COMPONENTS:
            missing = set(component.cost_fields) - valid
            assert not missing, (component.name, missing)

    def test_no_decision_side_fields_are_scaled(self):
        # Scaling these would change policy, not component speed.
        decision_knobs = {"max_inline_depth", "space_expansion_factor",
                          "absolute_size_cap", "tiny_limit", "small_limit",
                          "medium_limit", "hot_edge_threshold",
                          "guard_coverage_min", "max_guarded_targets"}
        for component in CAUSAL_COMPONENTS:
            assert not decision_knobs & set(component.cost_fields), \
                component.name

    def test_get_component_suggests_on_typo(self):
        with pytest.raises(ConfigError) as excinfo:
            get_component("gaurd")
        assert "gaurd" in str(excinfo.value)
        assert "guard" in str(excinfo.value)


class TestApplyVirtualSpeedup:
    def test_scales_only_the_component_fields(self):
        scaled = apply_virtual_speedup(DEFAULT_COSTS, "guard", 0.25)
        assert scaled.guard_test == pytest.approx(
            DEFAULT_COSTS.guard_test * 0.75)
        untouched = {f.name for f in dataclasses.fields(CostModel)} \
            - {"guard_test"}
        for name in untouched:
            assert getattr(scaled, name) == getattr(DEFAULT_COSTS, name)

    def test_factor_one_makes_component_free(self):
        scaled = apply_virtual_speedup(DEFAULT_COSTS, "compile", 1.0)
        assert scaled.opt_compile_cycles_per_bc == 0.0
        assert scaled.baseline_compile_cycles_per_bc == 0.0

    def test_original_model_is_untouched(self):
        before = dataclasses.asdict(DEFAULT_COSTS)
        apply_virtual_speedup(DEFAULT_COSTS, "organizer", 0.5)
        assert dataclasses.asdict(DEFAULT_COSTS) == before

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_out_of_range_factor_rejected(self, factor):
        with pytest.raises(ConfigError):
            apply_virtual_speedup(DEFAULT_COSTS, "guard", factor)

    def test_every_component_is_applicable(self):
        for name in component_names():
            scaled = apply_virtual_speedup(DEFAULT_COSTS, name, 0.5)
            spec = get_component(name)
            for field_name in spec.cost_fields:
                assert getattr(scaled, field_name) == pytest.approx(
                    getattr(DEFAULT_COSTS, field_name) * 0.5)


class TestAccountedShare:
    @staticmethod
    def _result(**overrides):
        from repro.aos.runtime import RunResult
        base = dict(
            program_name="p", policy_name="q", return_value=0,
            total_cycles=10_000.0,
            component_cycles={"app": 9_000.0, "aos_listeners": 100.0,
                              "compilation_thread": 500.0,
                              "decay_organizer": 100.0,
                              "ai_organizer": 100.0,
                              "method_sample_organizer": 100.0,
                              "controller_thread": 100.0},
            opt_code_bytes=0, live_opt_code_bytes=0, opt_compilations=0,
            opt_compile_cycles=0.0, opt_inlined_bytecodes=0,
            classes_loaded=0, methods_compiled=0, bytecodes_compiled=0,
            samples_taken=0, traces_recorded=0, mean_trace_depth=0.0,
            depth_histogram={}, dcg_traces=0, rule_count=0, refusals=0,
            guard_tests=500, guard_misses=0, dispatches=100,
            inline_entries=0, calls=200, osr_transfers=0, invalidations=0)
        base.update(overrides)
        return RunResult(**base)

    def test_accounting_backed_components(self):
        result = self._result()
        assert accounted_share("compile", result, DEFAULT_COSTS) == \
            pytest.approx(0.05)
        assert accounted_share("listener", result, DEFAULT_COSTS) == \
            pytest.approx(0.01)
        assert accounted_share("organizer", result, DEFAULT_COSTS) == \
            pytest.approx(0.04)

    def test_guard_and_dispatch_estimated_from_counts(self):
        result = self._result()
        expected_guard = 500 * DEFAULT_COSTS.guard_test / 10_000.0
        assert accounted_share("guard", result, DEFAULT_COSTS) == \
            pytest.approx(expected_guard)
        expected_dispatch = (100 * DEFAULT_COSTS.virtual_dispatch
                             + 200 * DEFAULT_COSTS.call_overhead) / 10_000.0
        assert accounted_share("dispatch", result, DEFAULT_COSTS) == \
            pytest.approx(expected_dispatch)

    def test_invalidation_has_no_share(self):
        assert accounted_share("invalidation", self._result(),
                               DEFAULT_COSTS) is None
