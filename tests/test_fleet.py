"""Tests for the fleet profile service (store, harness, warm start).

The contract points:

* **store determinism** -- publish order, snapshot merge order, and
  re-folds cannot change the serialized bytes (float folds run in
  canonical key order);
* **staleness** -- decay plus idle eviction ages unrefreshed entries out
  of the aggregate;
* **warm start** -- a late joiner bootstrapped from the fleet aggregate
  reaches its first inline rule in measurably fewer cycles than the
  same joiner cold, its warm rules carry fleet origin, and the
  bootstrap plus every purely-fleet-driven verdict is visible in
  decision provenance.
"""

import json
import random

import pytest

from repro.aos.runtime import AdaptiveRuntime
from repro.fleet import (FleetConfig, ShardedProfileStore, WarmProfile,
                         apply_warm_start, build_warm_profile,
                         merge_snapshots, program_fingerprint, run_fleet,
                         run_instance)
from repro.fleet.harness import fold_streams, instance_spec
from repro.fleet.report import (FLEET_SCHEMA, benchmark_report,
                                build_fleet_bundle, render_fleet_bundle,
                                validate_fleet_bundle)
from repro.fleet.store import STORE_SCHEMA, wire_key
from repro.jvm.costs import DEFAULT_COSTS
from repro.policies import make_policy
from repro.profiles.trace import ORIGIN_FLEET, ORIGIN_LOCAL
from repro.provenance.reasons import EventKind, ReasonCode
from repro.provenance.recorder import ProvenanceRecorder
from repro.workloads.spec import build_benchmark

SCALE = 0.05


@pytest.fixture(scope="module")
def fleet_outcome():
    config = FleetConfig(benchmark="jess", instances=2, scale=SCALE, jobs=1)
    return run_fleet(config)


# -- wire keys and fingerprints -----------------------------------------------


class TestFingerprint:
    def test_excludes_workload_seed(self):
        # Different fleet instances (different seeds) must share one
        # fingerprint or their profiles would never aggregate.
        config = FleetConfig(benchmark="jess", scale=SCALE)
        specs = [instance_spec(config, index) for index in range(3)]
        assert len({spec.seed for spec in specs}) == 3
        assert len({program_fingerprint("jess", SCALE)}) == 1

    def test_distinguishes_program_and_scale(self):
        assert program_fingerprint("jess", 0.05) != \
            program_fingerprint("db", 0.05)
        assert program_fingerprint("jess", 0.05) != \
            program_fingerprint("jess", 0.5)


# -- store ---------------------------------------------------------------------


class TestStore:
    def k(self, callee, *edges):
        return wire_key(callee, edges)

    def test_publish_aggregates_across_instances(self):
        store = ShardedProfileStore()
        key = self.k("A.m", ("B.n", 0))
        store.publish("i0", "fp", {key: 2.0})
        store.publish("i1", "fp", {key: 3.0})
        assert store.aggregate("fp")[key] == pytest.approx(5.0)

    def test_planes_are_separate(self):
        store = ShardedProfileStore()
        key = self.k("A.m", ("B.n", 0))
        store.publish("i0", "fp", {key: 2.0}, {key: 7.0})
        assert store.aggregate("fp", "traces")[key] == pytest.approx(2.0)
        assert store.aggregate("fp", "edges")[key] == pytest.approx(7.0)
        with pytest.raises(ValueError):
            store.aggregate("fp", "nope")

    def test_decay_and_weight_eviction(self):
        store = ShardedProfileStore(decay_rate=0.5, prune_epsilon=0.3)
        key = self.k("A.m")
        store.publish("i0", "fp", {key: 1.0})
        assert store.advance_epoch()["evicted"] == 0   # 0.5 survives
        stats = store.advance_epoch()                   # 0.25 < 0.3
        assert stats["evicted"] == 1
        assert store.aggregate("fp") == {}
        assert store.evicted_total == 1

    def test_idle_eviction(self):
        store = ShardedProfileStore(decay_rate=1.0, prune_epsilon=0.0,
                                    max_idle_epochs=2)
        stale, fresh = self.k("A.m"), self.k("B.n")
        store.publish("i0", "fp", {stale: 5.0, fresh: 5.0})
        for _ in range(3):
            store.publish("i0", "fp", {fresh: 0.5})
            store.advance_epoch()
        aggregate = store.aggregate("fp")
        assert stale not in aggregate
        assert fresh in aggregate

    def test_publish_order_cannot_change_snapshot_bytes(self):
        keys = [self.k(f"C{i}.m", (f"D{i % 3}.n", i % 5)) for i in range(20)]
        deltas = [(f"i{i % 4}", {keys[i]: 0.1 * (i + 1) + 1e-13})
                  for i in range(20)]
        blobs = set()
        for seed in range(4):
            order = list(deltas)
            random.Random(seed).shuffle(order)
            store = ShardedProfileStore()
            for instance_id, delta in order:
                store.publish(instance_id, "fp", delta)
            blobs.add(json.dumps(store.snapshot(), sort_keys=True))
        # Weights folded per key stay order-sensitive floats only if the
        # fold order varied; canonical folding makes all runs identical.
        assert len(blobs) == 1

    def test_snapshot_round_trip(self, fleet_outcome):
        store = fleet_outcome.store
        snap = store.snapshot()
        assert snap["schema"] == STORE_SCHEMA
        rebuilt = ShardedProfileStore.from_snapshot(snap)
        assert json.dumps(rebuilt.snapshot(), sort_keys=True) == \
            json.dumps(snap, sort_keys=True)
        fp = fleet_outcome.fingerprint
        assert rebuilt.aggregate(fp) == store.aggregate(fp)

    def test_save_load(self, tmp_path, fleet_outcome):
        path = str(tmp_path / "store.json")
        fleet_outcome.store.save(path)
        loaded = ShardedProfileStore.load(path)
        assert loaded.entry_count() == fleet_outcome.store.entry_count()

    def test_merge_is_argument_order_independent(self):
        snaps = []
        for start in range(3):
            store = ShardedProfileStore()
            for i in range(start, start + 8):
                store.publish(f"i{start}", "fp",
                              {self.k(f"C{i}.m"): 0.1 * (i + 1)})
            store.advance_epoch()
            snaps.append(store.snapshot())
        merged = {json.dumps(merge_snapshots(*order), sort_keys=True)
                  for order in ([snaps[0], snaps[1], snaps[2]],
                                [snaps[2], snaps[0], snaps[1]],
                                [snaps[1], snaps[2], snaps[0]])}
        assert len(merged) == 1

    def test_merge_sums_weights_and_contributions(self):
        key = self.k("A.m")
        stores = []
        for name in ("x", "y"):
            store = ShardedProfileStore()
            store.publish(name, "fp", {key: 2.0})
            stores.append(store)
        merged = ShardedProfileStore.from_snapshot(
            merge_snapshots(stores[0].snapshot(), stores[1].snapshot()))
        assert merged.aggregate("fp")[key] == pytest.approx(4.0)
        totals = {}
        for counts in merged.contribution_counts().values():
            totals.update(counts)
        assert totals == {"x": 1, "y": 1}

    def test_merge_rejects_mismatched_snapshots(self):
        store = ShardedProfileStore(num_shards=4)
        other = ShardedProfileStore(num_shards=8)
        with pytest.raises(ValueError):
            merge_snapshots(store.snapshot(), other.snapshot())
        with pytest.raises(ValueError):
            merge_snapshots({"schema": "bogus"})
        with pytest.raises(ValueError):
            merge_snapshots()

    def test_heterogeneity_bounds(self):
        store = ShardedProfileStore()
        key = self.k("A.m")
        store.publish("solo", "fp", {key: 1.0})
        assert store.heterogeneity() == 0.0
        store.publish("other", "fp", {key: 1.0})
        assert store.heterogeneity() == pytest.approx(1.0)


# -- harness -------------------------------------------------------------------


class TestHarness:
    def test_fleet_runs_all_instances(self, fleet_outcome):
        assert not fleet_outcome.failures
        assert set(fleet_outcome.results) == {"jess#0", "jess#1"}
        assert all(fleet_outcome.streams[instance_id]
                   for instance_id in fleet_outcome.results)
        assert fleet_outcome.store.entry_count(
            fleet_outcome.fingerprint) > 0
        assert fleet_outcome.epoch_stats

    def test_deltas_are_positive(self, fleet_outcome):
        for deltas in fleet_outcome.streams.values():
            for delta in deltas:
                assert all(w > 0.0 for w in delta.trace_weights.values())
                assert all(w > 0.0 for w in delta.edge_weights.values())

    def test_fleet_is_deterministic(self, fleet_outcome):
        config = FleetConfig(benchmark="jess", instances=2, scale=SCALE,
                             jobs=1)
        again = run_fleet(config)
        assert json.dumps(again.store.snapshot(), sort_keys=True) == \
            json.dumps(fleet_outcome.store.snapshot(), sort_keys=True)

    def test_fold_streams_replays_into_fresh_store(self, fleet_outcome):
        store = ShardedProfileStore()
        fold_streams(store, fleet_outcome.fingerprint,
                     fleet_outcome.streams)
        fp = fleet_outcome.fingerprint
        assert store.aggregate(fp) == fleet_outcome.store.aggregate(fp)


# -- warm start ----------------------------------------------------------------


class TestWarmStart:
    def test_empty_store_gives_no_profile(self):
        assert build_warm_profile(ShardedProfileStore(), "fp") is None

    def test_profile_shape(self, fleet_outcome):
        warm = build_warm_profile(fleet_outcome.store,
                                  fleet_outcome.fingerprint)
        assert isinstance(warm, WarmProfile)
        assert warm.rules
        costs = DEFAULT_COSTS
        expected = 2.0 * max(costs.ai_min_total_weight,
                             costs.first_compile_min_weight)
        assert warm.seeded_weight == pytest.approx(expected)
        assert sum(warm.trace_weights.values()) == pytest.approx(expected)
        assert all(rule.origin == ORIGIN_FLEET for rule in warm.rules)

    def test_apply_seeds_runtime_and_records_event(self, fleet_outcome):
        warm = build_warm_profile(fleet_outcome.store,
                                  fleet_outcome.fingerprint)
        generated = build_benchmark("jess", scale=SCALE)
        recorder = ProvenanceRecorder(label="warm")
        runtime = AdaptiveRuntime(generated.program, make_policy("fixed", 2),
                                  provenance=recorder)
        installed = apply_warm_start(runtime, warm)
        assert installed == len(warm.rules)
        assert runtime.warm_started
        assert runtime.first_rule_clock == 0.0
        assert runtime.state.warm_keys == warm.rule_keys
        assert len(runtime.state.rules) == installed
        events = [e for e in recorder.events
                  if e.kind == EventKind.WARM_START.value]
        assert len(events) == 1
        assert events[0].subject == fleet_outcome.fingerprint
        assert events[0].detail["rules"] == installed

    def test_warm_joiner_beats_cold_to_first_rule(self, fleet_outcome):
        config = fleet_outcome.config
        warm_profile = build_warm_profile(fleet_outcome.store,
                                          fleet_outcome.fingerprint)
        joiner = config.instances

        cold_rec = ProvenanceRecorder(label="cold")
        cold, _ = run_instance(config, joiner, provenance=cold_rec)
        warm_rec = ProvenanceRecorder(label="warm")
        warm, _ = run_instance(config, joiner, provenance=warm_rec,
                               warm_profile=warm_profile)

        assert not cold.warm_started and warm.warm_started
        assert cold.first_rule_clock is not None
        assert warm.first_rule_clock < cold.first_rule_clock

        def fleet_reasons(recorder):
            return [r for r in recorder.decisions
                    if r.reason == ReasonCode.FLEET_WARM.value]

        assert not fleet_reasons(cold_rec)
        assert fleet_reasons(warm_rec)

    def test_warm_origin_survives_rederivation(self, fleet_outcome):
        # After the run, rules re-derived by the AI organizer from mixed
        # fleet+local data keep fleet origin for warm keys and local
        # origin elsewhere.
        warm_profile = build_warm_profile(fleet_outcome.store,
                                          fleet_outcome.fingerprint)
        generated = build_benchmark("jess", scale=SCALE)
        runtime = AdaptiveRuntime(generated.program, make_policy("fixed", 2))
        apply_warm_start(runtime, warm_profile)
        runtime.run()
        warm_keys = runtime.state.warm_keys
        for rule in runtime.state.rules:
            expected = ORIGIN_FLEET if rule.key in warm_keys \
                else ORIGIN_LOCAL
            assert rule.origin == expected


# -- report --------------------------------------------------------------------


class TestFleetReport:
    @pytest.fixture(scope="class")
    def report(self):
        return benchmark_report("jess", instances=2, scale=SCALE, jobs=1)

    def test_cold_start_elimination_measured(self, report):
        elimination = report["cold_start_elimination"]
        assert elimination["first_rule_saved_cycles"] > 0
        assert report["warm"]["fleet_warm_decisions"] >= 1
        assert report["cold"]["fleet_warm_decisions"] == 0
        assert report["warm"]["warm_start_events"] == 1

    def test_dilution_and_eviction_sections(self, report):
        dilution = report["dilution"]
        assert 0.0 <= dilution["polluted_fraction"] <= 1.0
        assert 0.0 <= dilution["lost_fraction"] <= 1.0
        assert dilution["aggregate_rules"] > 0
        grid = report["eviction_sensitivity"]
        assert len(grid) == 3
        # A harsher policy cannot retain more entries than a laxer one.
        entries = [row["surviving_entries"] for row in grid]
        assert entries == sorted(entries)

    def test_bundle_validates_and_renders(self, report):
        bundle = {"schema": FLEET_SCHEMA, "instances": 2, "scale": SCALE,
                  "family": "fixed", "depth": 2, "heterogeneous": True,
                  "benchmarks": [report]}
        problems = validate_fleet_bundle(bundle)
        assert problems == []
        bundle["problems"], bundle["ok"] = problems, True
        rendered = render_fleet_bundle(bundle)
        assert "Cold-start elimination" in rendered
        assert "Eviction-policy sensitivity" in rendered
        assert "fleet bundle: OK" in rendered

    def test_validate_rejects_bad_bundles(self, report):
        assert validate_fleet_bundle({"schema": "bogus"})
        broken = json.loads(json.dumps(report))
        broken["warm"]["fleet_warm_decisions"] = 0
        broken["cold_start_elimination"]["first_rule_clock_warm"] = \
            broken["cold_start_elimination"]["first_rule_clock_cold"]
        problems = validate_fleet_bundle(
            {"schema": FLEET_SCHEMA, "benchmarks": [broken]})
        assert any("fleet-warm" in p for p in problems)
        assert any("not faster" in p for p in problems)

    def test_build_fleet_bundle_smoke(self):
        bundle = build_fleet_bundle(["jess"], instances=2, scale=SCALE,
                                    jobs=1)
        assert bundle["ok"], bundle["problems"]
        assert bundle["schema"] == FLEET_SCHEMA
