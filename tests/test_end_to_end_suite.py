"""Fast end-to-end smoke of every benchmark in the suite.

Each benchmark runs once at small scale under a representative policy;
these tests catch workload regressions (unreachable methods, broken
receivers, runaway recursion) that unit tests on the generator internals
would miss.
"""

import pytest

from repro.aos.runtime import AdaptiveRuntime
from repro.policies import make_policy
from repro.workloads.spec import BENCHMARK_ORDER, TABLE1, build_benchmark

SCALE = 0.06


@pytest.fixture(scope="module")
def suite_results():
    out = {}
    for name in BENCHMARK_ORDER:
        generated = build_benchmark(name, scale=SCALE)
        runtime = AdaptiveRuntime(generated.program,
                                  make_policy("hybrid1", 3))
        out[name] = runtime.run()
    return out


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
class TestSuiteSmoke:
    def test_completes(self, suite_results, name):
        assert suite_results[name].return_value == 0

    def test_every_method_compiled(self, suite_results, name):
        assert suite_results[name].methods_compiled == TABLE1[name][1]

    def test_optimization_kicked_in(self, suite_results, name):
        result = suite_results[name]
        assert result.opt_compilations > 0
        assert result.samples_taken > 10

    def test_app_cycles_dominate(self, suite_results, name):
        result = suite_results[name]
        assert result.aos_fraction() < 0.5  # generous at tiny scale

    def test_polymorphism_exercised(self, suite_results, name):
        result = suite_results[name]
        # Every personality includes at least one polymorphic pattern.
        assert result.dispatches + result.guard_tests > 0
