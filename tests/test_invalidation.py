"""Tests for dynamic class loading, loaded-world CHA, and invalidation."""

import pytest

from repro.aos.runtime import AdaptiveRuntime
from repro.compiler.compiled_method import DIRECT, GUARDED
from repro.compiler.oracle import InlineOracle
from repro.jvm.costs import CostModel
from repro.jvm.errors import ProgramError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (Arg, Const, Local, MethodDef, New, Return,
                               VirtualCall, Work)
from repro.policies import make_policy
from repro.workloads import lazy_loading
from repro.workloads.builder import ProgramBuilder


def shapes_program():
    b = ProgramBuilder("shapes")
    b.cls("Shape")
    b.cls("Circle", superclass="Shape")
    b.cls("Square", superclass="Shape")
    b.cls("App")
    b.method("Shape", "area", [Work(6), Return(Const(0))], params=1)
    b.method("Circle", "area", [Work(6), Return(Const(1))], params=1)
    b.method("Square", "area", [Work(6), Return(Const(2))], params=1)
    b.static_method("App", "use", [
        VirtualCall(0, "area", Arg(0), dst=0), Return(Local(0))
    ], params=1, locals_=2)
    b.static_method("App", "use_fresh", [
        New(1, "Circle"),
        VirtualCall(1, "area", Local(1), dst=0), Return(Local(0))
    ], params=0, locals_=3)
    b.static_method("App", "main", [Return(Const(0))])
    b.entry("App.main")
    return b.build()


class TestLoadedWorldCHA:
    def test_loading_tracked(self):
        h = ClassHierarchy(shapes_program())
        assert not h.is_loaded("Circle")
        assert h.mark_loaded("Circle")
        assert h.is_loaded("Circle")
        assert not h.mark_loaded("Circle")  # second load is a no-op
        assert h.loaded_count == 1

    def test_unknown_class_rejected(self):
        h = ClassHierarchy(shapes_program())
        with pytest.raises(ProgramError):
            h.mark_loaded("Ghost")

    def test_loaded_targets_grow_with_loading(self):
        h = ClassHierarchy(shapes_program())
        assert h.loaded_targets("area") == frozenset()
        h.mark_loaded("Circle")
        assert h.loaded_targets("area") == frozenset({"Circle.area"})
        h.mark_loaded("Square")
        assert h.loaded_targets("area") == \
            frozenset({"Circle.area", "Square.area"})

    def test_sole_loaded_target(self):
        h = ClassHierarchy(shapes_program())
        h.mark_loaded("Circle")
        assert h.sole_loaded_target("area").id == "Circle.area"
        h.mark_loaded("Square")
        assert h.sole_loaded_target("area") is None

    def test_inherited_target_counted(self):
        h = ClassHierarchy(shapes_program())
        h.mark_loaded("Shape")
        assert h.loaded_targets("area") == frozenset({"Shape.area"})


class TestPreExistenceInOracle:
    def _oracle(self, program, hierarchy, deps):
        costs = CostModel()
        return InlineOracle(
            program, hierarchy, costs,
            on_cha_dependency=lambda *a: deps.append(a))

    def test_preexisting_receiver_direct_with_dependency(self):
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        hierarchy.mark_loaded("Circle")
        deps = []
        oracle = self._oracle(program, hierarchy, deps)
        root = program.method("App.use")
        stmt = root.body[0]
        decision = oracle.decide(stmt, (("App.use", 0),), 0, 20, root)
        assert decision.inline and not decision.guarded
        assert deps == [("App.use", "area", "Circle.area")]

    def test_non_preexisting_receiver_guarded(self):
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        hierarchy.mark_loaded("Circle")
        deps = []
        oracle = self._oracle(program, hierarchy, deps)
        root = program.method("App.use_fresh")
        stmt = root.body[1]  # receiver comes from a New, not an Arg
        decision = oracle.decide(stmt, (("App.use_fresh", 1),), 0, 20, root)
        assert decision.inline and decision.guarded
        assert deps == []  # the guard protects; no dependency needed

    def test_two_loaded_targets_fall_back_to_profile(self):
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        hierarchy.mark_loaded("Circle")
        hierarchy.mark_loaded("Square")
        deps = []
        oracle = self._oracle(program, hierarchy, deps)
        root = program.method("App.use")
        decision = oracle.decide(root.body[0], (("App.use", 0),), 0, 20,
                                 root)
        assert not decision.inline
        assert decision.reason == "no_profile"


def two_selector_program():
    """A hierarchy with two independently-breakable selectors."""
    b = ProgramBuilder("twosel")
    b.cls("Shape")
    b.cls("Circle", superclass="Shape")
    b.cls("Square", superclass="Shape")
    b.cls("Fancy", superclass="Shape")
    b.cls("App")
    b.method("Shape", "area", [Work(6), Return(Const(0))], params=1)
    b.method("Circle", "area", [Work(6), Return(Const(1))], params=1)
    b.method("Square", "area", [Work(6), Return(Const(2))], params=1)
    b.method("Shape", "name", [Work(4), Return(Const(10))], params=1)
    b.method("Fancy", "name", [Work(4), Return(Const(11))], params=1)
    b.static_method("App", "use", [
        VirtualCall(0, "area", Arg(0), dst=0),
        VirtualCall(1, "name", Arg(0), dst=1),
        Return(Local(0)),
    ], params=1, locals_=2)
    b.static_method("App", "main", [Return(Const(0))])
    b.entry("App.main")
    return b.build()


class TestDependenciesSurviveFailedInvalidation:
    """Regression: a class load whose invalidation found no installed
    code used to clear the root's dependency records anyway, so a later
    class load could never invalidate that method."""

    ROOT = "App.use"

    def _runtime(self):
        runtime = AdaptiveRuntime(two_selector_program(),
                                  make_policy("cins", 1))
        runtime.hierarchy.mark_loaded("Circle")
        # The optimizing compiler devirtualized both selectors against
        # the loaded world and recorded the dependencies...
        runtime.database.record_cha_dependency(self.ROOT, "area",
                                               "Circle.area")
        runtime.database.record_cha_dependency(self.ROOT, "name",
                                               "Shape.name")
        return runtime

    def _install_opt_code(self, runtime):
        from repro.compiler.compiled_method import CompiledMethod, InlineNode
        root = runtime.program.method(self.ROOT)
        runtime.code_cache.install(CompiledMethod(
            InlineNode(root), inlined_bytecodes=root.bytecodes,
            code_bytes=64, compile_cycles=100, version=1))

    def test_two_class_loads_both_get_their_invalidation(self):
        runtime = self._runtime()
        # ...but the compiled code is not installed yet (the compile is
        # still in flight) when Square breaks the "area" devirtualization.
        runtime.hierarchy.mark_loaded("Square")
        runtime._on_class_load("Square")
        assert runtime.database.invalidation_count == 0
        # The failed invalidation must not have dropped the records: the
        # "name" dependency is still being tracked.
        deps = runtime.database.cha_dependencies().get(self.ROOT, {})
        assert deps.get("name") == "Shape.name"

        # The compile lands; then a second class load breaks "name".
        self._install_opt_code(runtime)
        runtime.hierarchy.mark_loaded("Fancy")
        runtime._on_class_load("Fancy")
        assert runtime.database.invalidation_count == 1
        assert runtime.code_cache.opt_version(self.ROOT) is None
        assert self.ROOT not in runtime.database.cha_dependencies()

    def test_successful_invalidation_rearms_osr(self):
        runtime = self._runtime()
        self._install_opt_code(runtime)
        # The method had requested OSR while at baseline earlier.
        runtime.machine._osr_notified.add(self.ROOT)
        runtime.hierarchy.mark_loaded("Square")
        runtime._on_class_load("Square")
        assert runtime.database.invalidation_count == 1
        # Deoptimized back to baseline: it may request OSR again.
        assert self.ROOT not in runtime.machine._osr_notified


class TestEndToEndInvalidation:
    @pytest.fixture(scope="class")
    def run(self):
        built = lazy_loading.build(iterations=20_000)
        runtime = AdaptiveRuntime(built.program, make_policy("cins", 1))
        result = runtime.run()
        return built, runtime, result

    def test_invalidation_happened(self, run):
        _built, runtime, result = run
        assert result.invalidations >= 1
        assert runtime.code_cache.invalidated_compilations >= 1

    def test_invalidated_method_recompiled(self, run):
        built, runtime, _result = run
        invalidated = {root for root, _sel, _clk
                       in runtime.database.invalidations}
        assert invalidated  # something was devirtualized then broken
        for root_id in invalidated:
            events = runtime.database.compilations_of(root_id)
            # Compiled at least twice: before and after the class load.
            assert len(events) >= 2

    def test_final_code_handles_both_classes(self, run):
        built, runtime, result = run
        # After re-optimization the dispatch is guarded or profile-driven;
        # execution completed correctly either way.
        assert result.return_value == 0

    def test_invalidation_clock_matches_load_point(self, run):
        built, runtime, _result = run
        _root, _sel, clock = runtime.database.invalidations[0]
        # The class loads at ~load_at/iterations of the app run; just
        # check it happened strictly inside the run.
        assert 0 < clock < runtime.machine.clock

    def test_no_invalidation_without_lazy_class(self):
        built = lazy_loading.build(iterations=6_000, load_fraction=2.0)
        runtime = AdaptiveRuntime(built.program, make_policy("cins", 1))
        result = runtime.run()  # Square never loads
        assert result.invalidations == 0
