"""Unit tests for the method size classifier (paper Section 3.1)."""

import pytest

from repro.compiler.size_estimator import (CONST_ARG_DISCOUNT,
                                           MIN_ESTIMATE_FRACTION, SizeClass,
                                           classify, classify_cache_info,
                                           clear_classify_cache,
                                           count_constant_args,
                                           estimate_inlined_bytecodes,
                                           is_large)
from repro.jvm.costs import CostModel
from repro.jvm.program import Arg, Const, Local, MethodDef, Return, Work


def method_of_size(bytecodes: int) -> MethodDef:
    return MethodDef("C", "m", 1, True, [Work(1)], bytecodes=bytecodes)


@pytest.fixture
def costs():
    return CostModel()


class TestClassBoundaries:
    def test_tiny_below_2x_call(self, costs):
        assert classify(method_of_size(costs.tiny_limit - 1),
                        costs) is SizeClass.TINY

    def test_small_at_tiny_limit(self, costs):
        assert classify(method_of_size(costs.tiny_limit),
                        costs) is SizeClass.SMALL

    def test_small_up_to_5x_call(self, costs):
        assert classify(method_of_size(costs.small_limit),
                        costs) is SizeClass.SMALL

    def test_medium_above_small_limit(self, costs):
        assert classify(method_of_size(costs.small_limit + 1),
                        costs) is SizeClass.MEDIUM

    def test_medium_up_to_25x_call(self, costs):
        assert classify(method_of_size(costs.medium_limit),
                        costs) is SizeClass.MEDIUM

    def test_large_above_25x_call(self, costs):
        assert classify(method_of_size(costs.medium_limit + 1),
                        costs) is SizeClass.LARGE

    def test_is_large_helper(self, costs):
        assert is_large(method_of_size(costs.medium_limit + 1), costs)
        assert not is_large(method_of_size(10), costs)


class TestConstantArgDiscount:
    def test_no_constants_no_discount(self):
        m = method_of_size(100)
        assert estimate_inlined_bytecodes(m, 0) == 100

    def test_each_constant_shrinks_estimate(self):
        m = method_of_size(100)
        e0 = estimate_inlined_bytecodes(m, 0)
        e1 = estimate_inlined_bytecodes(m, 1)
        e2 = estimate_inlined_bytecodes(m, 2)
        assert e0 > e1 > e2

    def test_discount_floor(self):
        m = method_of_size(100)
        floor = int(100 * MIN_ESTIMATE_FRACTION)
        assert estimate_inlined_bytecodes(m, 50) == floor

    def test_estimate_never_below_one(self):
        m = method_of_size(1)
        assert estimate_inlined_bytecodes(m, 10) == 1

    def test_discount_can_change_class(self, costs):
        # A method just over the medium limit becomes MEDIUM with enough
        # constant arguments (the paper's Section 3.1 footnote effect).
        size = costs.medium_limit + 4
        m = method_of_size(size)
        assert classify(m, costs, 0) is SizeClass.LARGE
        assert classify(m, costs, 2) is SizeClass.MEDIUM


class TestClassifyMemoization:
    def test_repeat_lookup_hits_cache(self, costs):
        clear_classify_cache()
        m = method_of_size(100)
        first = classify(m, costs, 0)
        assert classify_cache_info()["misses"] >= 1
        hits_before = classify_cache_info()["hits"]
        assert classify(m, costs, 0) is first
        assert classify_cache_info()["hits"] == hits_before + 1

    def test_distinct_const_args_are_distinct_entries(self, costs):
        clear_classify_cache()
        m = method_of_size(costs.medium_limit + 4)
        assert classify(m, costs, 0) is SizeClass.LARGE
        assert classify(m, costs, 2) is SizeClass.MEDIUM
        assert classify_cache_info()["size"] == 2

    def test_clear_resets_counters(self, costs):
        classify(method_of_size(10), costs)
        clear_classify_cache()
        info = classify_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0}


class TestCountConstantArgs:
    def test_counts_only_consts(self):
        args = [Const(1), Arg(0), Local(2), Const(5)]
        assert count_constant_args(args) == 2

    def test_empty(self):
        assert count_constant_args([]) == 0
