"""The zero-overhead contract, as one test.

Every instrumentation surface -- telemetry, decision provenance,
progress points, dispatch/epoch observers -- must charge zero simulated
cycles and change zero decisions.  The contract is what makes the
observability stack trustworthy: a recorded run *is* the stock run, and
cached results stay valid whether or not they were recorded.

The anchor is the committed golden decision log (the hashmap example
under fixed:2): a fully bare run must be cycle-identical to the
provenance-recorded run that the golden log pins, and piling every
instrument onto one run must change nothing either.
"""

import os

from repro.aos.runtime import AdaptiveRuntime
from repro.policies import make_policy
from repro.provenance import NULL_PROVENANCE, ProvenanceRecorder
from repro.telemetry import NULL_RECORDER, TelemetryRecorder
from repro.telemetry.progress import ProgressTracker
from repro.workloads.hashmap_example import build as build_hashmap

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "hashmap_fixed2.decisions.jsonl")


def _bare_run():
    """The stock configuration: every instrument at its null default."""
    built = build_hashmap(iterations=4000)
    runtime = AdaptiveRuntime(built.program, make_policy("fixed", 2),
                              telemetry=NULL_RECORDER,
                              provenance=NULL_PROVENANCE)
    assert runtime.machine.dispatch_observer is None
    assert not runtime.machine.progress_loops
    return runtime.run()


def _fully_instrumented_run():
    """Same run with every instrument attached at once."""
    built = build_hashmap(iterations=4000)
    runtime = AdaptiveRuntime(
        built.program, make_policy("fixed", 2),
        telemetry=TelemetryRecorder(label="contract"),
        provenance=ProvenanceRecorder(label="contract"),
        progress=ProgressTracker(label="contract"))
    return runtime.run()


def _fingerprint(result) -> dict:
    """Every decision-sensitive observable of a run."""
    return {
        "total_cycles": result.total_cycles,
        "component_cycles": result.component_cycles,
        "opt_compilations": result.opt_compilations,
        "opt_code_bytes": result.opt_code_bytes,
        "live_opt_code_bytes": result.live_opt_code_bytes,
        "rule_count": result.rule_count,
        "guard_tests": result.guard_tests,
        "guard_misses": result.guard_misses,
        "dispatches": result.dispatches,
        "inline_entries": result.inline_entries,
        "invalidations": result.invalidations,
        "osr_transfers": result.osr_transfers,
        "samples_taken": result.samples_taken,
    }


def test_bare_run_matches_golden_recorded_run():
    """A bare run is cycle-identical to the run the golden log pins.

    ``test_decision_log_golden`` pins the provenance-recorded run's log
    byte-for-byte against the committed golden file; here the *bare*
    run must reproduce that recorded run's observables exactly, closing
    the chain bare == recorded == golden.  The recorded log is also
    re-checked against the golden file so this test fails loudly on its
    own if the anchor ever drifts.
    """
    built = build_hashmap(iterations=4000)
    recorder = ProvenanceRecorder(label="golden/hashmap/fixed2")
    recorded = AdaptiveRuntime(built.program, make_policy("fixed", 2),
                               provenance=recorder).run()
    with open(GOLDEN_PATH) as handle:
        assert recorder.to_jsonl() == handle.read()
    assert _fingerprint(_bare_run()) == _fingerprint(recorded)


def test_full_instrumentation_changes_nothing():
    bare = _fingerprint(_bare_run())
    instrumented = _fingerprint(_fully_instrumented_run())
    assert instrumented == bare


def test_speculation_is_off_by_default():
    """Guard elision is opt-in, never ambient: the default cost model
    keeps the speculation pass off, so stock runs -- including the run
    the golden log pins -- never construct the analysis at all."""
    from repro.jvm.costs import DEFAULT_COSTS
    assert DEFAULT_COSTS.speculation_enabled is False
    built = build_hashmap(iterations=4000)
    runtime = AdaptiveRuntime(built.program, make_policy("fixed", 2))
    assert runtime.speculation is None


def test_speculation_disabled_run_matches_golden_byte_for_byte():
    """Explicitly disabling speculation is the same as the default: the
    recorded decision log reproduces the committed golden file exactly
    (modulo the label header, which names the run)."""
    from repro.jvm.costs import DEFAULT_COSTS
    costs = DEFAULT_COSTS.replace(speculation_enabled=False)
    built = build_hashmap(iterations=4000)
    recorder = ProvenanceRecorder(label="golden/hashmap/fixed2")
    AdaptiveRuntime(built.program, make_policy("fixed", 2, costs=costs),
                    costs=costs, provenance=recorder).run()
    with open(GOLDEN_PATH) as handle:
        assert recorder.to_jsonl() == handle.read()


def test_progress_tracking_alone_is_cycle_neutral():
    tracker = ProgressTracker(label="contract")
    built = build_hashmap(iterations=4000)
    tracked = AdaptiveRuntime(built.program, make_policy("fixed", 2),
                              progress=tracker).run()
    bare = _bare_run()
    assert tracked.total_cycles == bare.total_cycles
    assert tracked.component_cycles == bare.component_cycles
    # ...while still having actually measured something.
    assert tracker.total_marks() > 0
    assert tracked.progress_points is not None
    assert bare.progress_points is None
