"""Unit tests for call-trace structures."""

import pytest

from repro.profiles.trace import (InlineRule, TraceKey, format_trace,
                                  make_context)


def key(callee="D", *pairs):
    return TraceKey(callee, tuple(pairs) or (("C", 1),))


class TestTraceKey:
    def test_depth_counts_edges(self):
        k = key("D", ("C", 1), ("B", 2), ("A", 3))
        assert k.depth == 3

    def test_empty_context_rejected(self):
        with pytest.raises(ValueError):
            TraceKey("D", ())

    def test_edge_projection(self):
        k = key("D", ("C", 1), ("B", 2))
        assert k.edge == TraceKey("D", (("C", 1),))

    def test_edge_of_depth1_is_self(self):
        k = key("D", ("C", 1))
        assert k.edge is k

    def test_immediate_caller_and_site(self):
        k = key("D", ("C", 7), ("B", 2))
        assert k.immediate_caller == "C"
        assert k.callsite == 7

    def test_truncated(self):
        k = key("D", ("C", 1), ("B", 2), ("A", 3))
        assert k.truncated(2) == key("D", ("C", 1), ("B", 2))

    def test_truncated_beyond_depth_is_self(self):
        k = key("D", ("C", 1))
        assert k.truncated(5) is k

    def test_truncated_zero_rejected(self):
        with pytest.raises(ValueError):
            key().truncated(0)

    def test_equality_and_hash(self):
        a = key("D", ("C", 1), ("B", 2))
        b = key("D", ("C", 1), ("B", 2))
        assert a == b
        assert hash(a) == hash(b)
        assert a != key("D", ("C", 1))
        assert a != key("E", ("C", 1), ("B", 2))

    def test_not_equal_to_other_types(self):
        assert key() != "not a trace"

    def test_usable_as_dict_key(self):
        d = {key("D", ("C", 1)): 1.0}
        d[key("D", ("C", 1))] = 2.0
        assert len(d) == 1


class TestInlineRule:
    def test_accessors(self):
        k = key("D", ("C", 1), ("B", 2))
        rule = InlineRule(k, weight=10.0, share=0.02)
        assert rule.callee == "D"
        assert rule.context == (("C", 1), ("B", 2))
        assert rule.weight == 10.0
        assert "share" in repr(rule)


class TestHelpers:
    def test_make_context_normalizes(self):
        ctx = make_context([("C", "1"), ("B", 2.0)])
        assert ctx == (("C", 1), ("B", 2))

    def test_format_trace_matches_paper_notation(self):
        k = key("D", ("C", 1), ("B", 2), ("A", 3))
        assert format_trace(k) == "A => B => C => D"

    def test_format_depth1(self):
        assert format_trace(key("D", ("C", 1))) == "C => D"
