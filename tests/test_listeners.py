"""Unit tests for the AOS listeners, especially the trace-walk semantics."""

import pytest

from repro.aos.listeners import (MethodListener, TerminationStatsProbe,
                                 TraceListener)
from repro.jvm.costs import CostModel
from repro.jvm.frames import Frame, physical_method
from repro.jvm.program import MethodDef, Return, Const, Work
from repro.policies.catalog import (ClassMethods, ContextInsensitive,
                                    FixedLevel, LargeMethods,
                                    ParameterlessClassMethods,
                                    ParameterlessLargeMethods,
                                    ParameterlessMethods)


def method(name, params=1, static=False, bytecodes=20):
    return MethodDef("K", name, params, static, [Return(Const(0))],
                     bytecodes=bytecodes)


def stack_from(chain):
    """Build a stack from [(method, entry_site), ...] bottom-first."""
    return [Frame(m, site, False) for m, site in chain]


def std_stack(*methods):
    """main(entry) -> m1@1 -> m2@2 -> ... ; top of stack last."""
    chain = [(methods[0], None)]
    for index, m in enumerate(methods[1:], start=1):
        chain.append((m, index))
    return stack_from(chain)


MAIN = method("main", params=0, static=True)
A = method("a", params=2)
B = method("b", params=2)
C = method("c", params=2)
D = method("d", params=2)


class TestMethodListener:
    def test_records_physical_method(self):
        listener = MethodListener()
        stack = std_stack(MAIN, A, B)
        assert listener.sample(stack) == B.id
        assert listener.drain() == [B.id]
        assert listener.drain() == []

    def test_inlined_top_frame_attributes_to_root(self):
        listener = MethodListener()
        stack = std_stack(MAIN, A)
        stack.append(Frame(B, 7, True))  # B inlined into A
        assert listener.sample(stack) == A.id

    def test_empty_stack(self):
        listener = MethodListener()
        assert listener.sample([]) is None

    def test_physical_method_helper(self):
        stack = std_stack(MAIN, A)
        stack.append(Frame(B, 7, True))
        assert physical_method(stack) is A
        assert physical_method([]) is None


class TestTraceWalk:
    def test_cins_records_single_edge(self):
        listener = TraceListener(ContextInsensitive())
        key = listener.sample(std_stack(MAIN, A, B, C))
        assert key.callee == C.id
        assert key.depth == 1
        assert key.context == ((B.id, 3),)

    def test_fixed_records_requested_depth(self):
        listener = TraceListener(FixedLevel(3))
        key = listener.sample(std_stack(MAIN, A, B, C))
        assert key.depth == 3
        assert key.context == ((B.id, 3), (A.id, 2), (MAIN.id, 1))

    def test_fixed_stops_at_stack_bottom(self):
        listener = TraceListener(FixedLevel(5))
        key = listener.sample(std_stack(MAIN, A, B))
        assert key.depth == 2  # main has no caller
        assert listener.termination_reasons.get("stack") == 1

    def test_no_sample_without_an_edge(self):
        listener = TraceListener(FixedLevel(2))
        assert listener.sample(stack_from([(MAIN, None)])) is None
        assert listener.sample([]) is None

    def test_inlined_frames_are_walked(self):
        # B physically inlined into A must still appear in the trace
        # (the optimized-stack-frames requirement of Section 3.3).
        listener = TraceListener(FixedLevel(3))
        stack = [Frame(MAIN, None, False), Frame(A, 1, False),
                 Frame(B, 2, True), Frame(C, 3, True)]
        key = listener.sample(stack)
        assert key.callee == C.id
        assert key.context[0] == (B.id, 3)
        assert key.context[1] == (A.id, 2)

    def test_depth_histogram_updated(self):
        listener = TraceListener(FixedLevel(2))
        listener.sample(std_stack(MAIN, A, B, C))
        listener.sample(std_stack(MAIN, A))
        assert listener.depth_histogram == {2: 1, 1: 1}
        assert listener.mean_depth() == pytest.approx(1.5)

    def test_walk_cost_scales_with_depth(self):
        costs = CostModel()
        listener = TraceListener(FixedLevel(4))
        key = listener.sample(std_stack(MAIN, A, B, C, D))
        assert listener.walk_cost(key, costs) == \
            (key.depth + 1) * costs.trace_frame_cost


class TestParameterlessTermination:
    def test_parameterless_callee_stops_at_depth_one(self):
        # "20% of sampled callee methods are immediately parameterless and
        # would require no additional context sensitivity."
        leaf = method("leaf", params=1, static=False)  # only `this`
        listener = TraceListener(ParameterlessMethods(5))
        key = listener.sample(std_stack(MAIN, A, B, leaf))
        assert key.depth == 1
        assert listener.termination_reasons.get("stop_below") == 1

    def test_parameterful_chain_walks_full_depth(self):
        listener = TraceListener(ParameterlessMethods(3))
        key = listener.sample(std_stack(MAIN, A, B, C))
        assert key.depth == 3

    def test_parameterless_mid_chain_stops_walk(self):
        # Chain: callee(c) <- b(parameterless) <- a <- main.  Edge 1 is
        # always recorded; edge 2 gated on the callee; edge 3 gated on the
        # parameterless b -> stops at depth 2.
        b_empty = method("b0", params=0, static=True)
        listener = TraceListener(ParameterlessMethods(5))
        key = listener.sample(std_stack(MAIN, A, b_empty, C))
        assert key.depth == 2

    def test_static_with_params_does_not_stop(self):
        s = method("s", params=2, static=True)
        listener = TraceListener(ParameterlessMethods(3))
        key = listener.sample(std_stack(MAIN, A, s, C))
        assert key.depth == 3


class TestClassMethodTermination:
    def test_static_callee_stops_at_depth_one(self):
        s = method("s", params=2, static=True)
        listener = TraceListener(ClassMethods(5))
        key = listener.sample(std_stack(MAIN, A, B, s))
        assert key.depth == 1

    def test_instance_chain_walks(self):
        listener = TraceListener(ClassMethods(3))
        key = listener.sample(std_stack(MAIN, A, B, C))
        assert key.depth == 3

    def test_static_mid_chain_stops(self):
        s = method("s", params=2, static=True)
        listener = TraceListener(ClassMethods(5))
        key = listener.sample(std_stack(MAIN, A, s, C))
        assert key.depth == 2


class TestLargeMethodTermination:
    def test_large_caller_included_then_stop(self):
        costs = CostModel()
        big = method("big", params=2, bytecodes=costs.medium_limit + 50)
        listener = TraceListener(LargeMethods(5, costs))
        key = listener.sample(std_stack(MAIN, big, B, C))
        # Walk: edge1 adds B, edge2 adds big (stop_at) -> depth 2.
        assert key.depth == 2
        assert key.context[-1][0] == big.id
        assert listener.termination_reasons.get("stop_at") == 1

    def test_large_callee_immediate_caller(self):
        costs = CostModel()
        big = method("big", params=2, bytecodes=costs.medium_limit + 50)
        listener = TraceListener(LargeMethods(5, costs))
        key = listener.sample(std_stack(MAIN, A, big, C))
        # Edge 1's caller is big: recorded, then stop.
        assert key.depth == 1


class TestHybrids:
    def test_hybrid1_stops_on_static_or_parameterless(self):
        s = method("s", params=2, static=True)
        listener = TraceListener(ParameterlessClassMethods(5))
        key = listener.sample(std_stack(MAIN, A, s, C))
        assert key.depth == 2

        empty = method("e", params=1)
        listener2 = TraceListener(ParameterlessClassMethods(5))
        key2 = listener2.sample(std_stack(MAIN, A, B, empty))
        assert key2.depth == 1

    def test_hybrid2_combines_parameterless_and_large(self):
        costs = CostModel()
        big = method("big", params=2, bytecodes=costs.medium_limit + 50)
        listener = TraceListener(ParameterlessLargeMethods(5, costs))
        key = listener.sample(std_stack(MAIN, big, B, C))
        assert key.depth == 2  # stopped at the large caller

        empty = method("e", params=1)
        listener2 = TraceListener(ParameterlessLargeMethods(5, costs))
        key2 = listener2.sample(std_stack(MAIN, A, B, empty))
        assert key2.depth == 1  # parameterless callee


class TestTerminationProbe:
    def test_probe_statistics(self):
        costs = CostModel()
        probe = TerminationStatsProbe(costs)
        empty = method("e", params=1)
        big = method("big", params=2, bytecodes=costs.medium_limit + 50)
        s = method("s", params=2, static=True)

        probe.sample(std_stack(MAIN, A, empty))     # callee parameterless
        probe.sample(std_stack(MAIN, s, A, C))      # static at position 2
        probe.sample(std_stack(big, A, B, C))       # large at position 3

        assert probe.samples == 3
        assert probe.fraction_immediately_parameterless() == \
            pytest.approx(1 / 3)
        # main (params=0, static) counts as parameterless when reached;
        # the third stack contains no parameterless method at all.
        assert probe.fraction_parameterless_within(5) == pytest.approx(2 / 3)
        assert probe.fraction_class_method_within(2) > 0
        assert 0.0 <= probe.fraction_large_at_or_beyond(3) <= 1.0

    def test_probe_ignores_entry_only_stack(self):
        probe = TerminationStatsProbe(CostModel())
        probe.sample(stack_from([(MAIN, None)]))
        assert probe.samples == 0
