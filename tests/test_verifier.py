"""Unit tests for the analysis-layer program verifier."""

import pytest

from conftest import build_diamond_program
from repro.analysis import verifier
from repro.analysis.verifier import (VERIFIER_CODES, VerificationFailure,
                                     verify_program)
from repro.jvm.program import (Arg, ClassDef, Const, If, Let, Local, Loop,
                               Mod, MethodDef, New, NewPool, Program, Return,
                               StaticCall, VirtualCall, Work)
from repro.workloads import builder as builder_mod
from repro.workloads.builder import ProgramBuilder


def program_with(entry_body, classes=(), methods=(), entry_params=0,
                 num_locals=8):
    """A minimal program: Main.main plus optional extra classes/methods.

    ``methods`` entries are (klass, name, num_params, is_static, body).
    The program is deliberately NOT validated -- the verifier must cope
    with arbitrarily broken input without raising.
    """
    p = Program("broken")
    p.add_class(ClassDef("Main"))
    for cls in classes:
        p.add_class(cls)
    for klass, name, params, static, body in methods:
        p.classes[klass].declare(MethodDef(klass, name, params, static, body))
    p.classes["Main"].declare(
        MethodDef("Main", "main", entry_params, True, entry_body,
                  num_locals=num_locals))
    p.set_entry("Main.main")
    return p


def codes_of(program):
    return {e.code for e in verify_program(program).errors}


class TestCleanPrograms:
    def test_diamond_verifies_clean(self):
        program, _sites = build_diamond_program()
        report = verify_program(program)
        assert report.ok
        assert report.methods_checked == 5
        assert report.sites_checked == 3

    def test_report_counters_and_render(self):
        program, _sites = build_diamond_program()
        report = verify_program(program)
        assert report.by_code() == {}
        assert "OK" in report.render()
        report.raise_if_failed()  # must not raise


class TestHierarchyChecks:
    def test_unknown_superclass(self):
        p = program_with([Return(Const(0))],
                         classes=[ClassDef("A", superclass="Ghost")])
        assert verifier.UNKNOWN_SUPERCLASS in codes_of(p)

    def test_superclass_cycle(self):
        p = program_with([Return(Const(0))],
                         classes=[ClassDef("A", superclass="B"),
                                  ClassDef("B", superclass="A")])
        assert verifier.SUPERCLASS_CYCLE in codes_of(p)

    def test_unknown_interface(self):
        p = program_with([Return(Const(0))],
                         classes=[ClassDef("A", interfaces=("Ghost",))])
        assert verifier.UNKNOWN_INTERFACE in codes_of(p)


class TestEntryChecks:
    def test_missing_entry(self):
        p = Program("broken")
        p.add_class(ClassDef("Main"))
        assert verifier.ENTRY_MISSING in codes_of(p)

    def test_entry_with_params(self):
        p = program_with([Return(Const(0))], entry_params=2)
        assert verifier.ENTRY_PARAMS in codes_of(p)


class TestCallChecks:
    def test_unknown_static_target(self):
        p = program_with([StaticCall(0, "Ghost.m", dst=0), Return(Const(0))])
        assert verifier.UNKNOWN_STATIC_TARGET in codes_of(p)

    def test_static_arity_mismatch(self):
        p = program_with(
            [StaticCall(0, "Main.helper", [Const(1), Const(2)], dst=0),
             Return(Const(0))],
            methods=[("Main", "helper", 1, True, [Return(Arg(0))])])
        assert verifier.STATIC_ARITY in codes_of(p)

    def test_unresolved_selector(self):
        p = program_with([New(0, "Main"),
                          VirtualCall(1, "ghost", Local(0), dst=1),
                          Return(Const(0))])
        assert verifier.UNRESOLVED_SELECTOR in codes_of(p)

    def test_virtual_arity_mismatch(self):
        # ping declares receiver-only (1 slot); dispatch passes an extra arg.
        p = program_with(
            [New(0, "A"), VirtualCall(1, "ping", Local(0), [Const(7)],
                                      dst=1),
             Return(Const(0))],
            classes=[ClassDef("A")],
            methods=[("A", "ping", 1, False, [Return(Const(0))])])
        assert verifier.VIRTUAL_ARITY in codes_of(p)

    def test_duplicate_site_ids(self):
        p = program_with(
            [StaticCall(5, "Main.helper", dst=0),
             StaticCall(5, "Main.helper", dst=1), Return(Const(0))],
            methods=[("Main", "helper", 0, True, [Return(Const(0))])])
        assert verifier.DUPLICATE_SITE in codes_of(p)


class TestBodyChecks:
    def test_unknown_class_in_new(self):
        p = program_with([New(0, "Ghost"), Return(Const(0))])
        assert verifier.UNKNOWN_CLASS in codes_of(p)

    def test_empty_pool(self):
        p = program_with([NewPool(0, []), Return(Const(0))])
        assert verifier.EMPTY_POOL in codes_of(p)

    def test_arg_index_out_of_range(self):
        p = program_with(
            [StaticCall(0, "Main.helper", [Const(1)], dst=0),
             Return(Const(0))],
            methods=[("Main", "helper", 1, True, [Return(Arg(3))])])
        assert verifier.ARG_RANGE in codes_of(p)

    def test_local_index_out_of_range(self):
        p = program_with([Let(99, Const(1)), Return(Const(0))], num_locals=4)
        assert verifier.LOCAL_RANGE in codes_of(p)

    def test_negative_loop_bound(self):
        p = program_with([Loop(Const(-3), 0, [Work(1)]), Return(Const(0))])
        assert verifier.LOOP_BOUND in codes_of(p)

    def test_negative_work_cost(self):
        # The Work constructor rejects negatives, so a bad cost can only
        # arrive via mutation -- exactly what the verifier must catch.
        work = Work(1)
        work.cost = -5
        p = program_with([work, Return(Const(0))])
        assert verifier.WORK_COST in codes_of(p)

    def test_mod_by_constant_zero(self):
        p = program_with([Let(0, Mod(Const(7), Const(0))), Return(Const(0))])
        assert verifier.MOD_ZERO in codes_of(p)

    def test_bad_kind_tags(self):
        class FakeStmt:
            kind = 999

        class FakeExpr:
            kind = 888

        # body_bytecodes would choke on the fake kinds, so size the
        # method explicitly (the verifier must not depend on it).
        p = Program("broken")
        p.add_class(ClassDef("Main"))
        p.classes["Main"].declare(MethodDef(
            "Main", "main", 0, True,
            [FakeStmt(), Let(0, FakeExpr()), Return(Const(0))],
            bytecodes=3))
        p.set_entry("Main.main")
        codes = codes_of(p)
        assert verifier.BAD_STMT_KIND in codes
        assert verifier.BAD_EXPR_KIND in codes

    def test_error_paths_locate_nested_statements(self):
        bad = Work(1)
        bad.cost = -1
        p = program_with([If(Const(1), [bad], [Work(1)]),
                          Return(Const(0))])
        (error,) = verify_program(p).errors
        assert error.path == "body[0].then[0]"
        assert error.method == "Main.main"
        assert error.code in VERIFIER_CODES
        assert "body[0].then[0]" in error.describe()


class TestBuilderGate:
    def _malformed_builder(self, name):
        # Arg(2) is out of range for a parameterless main: a defect
        # Program.validate misses but the verifier catches.
        b = ProgramBuilder(name)
        b.cls("Main")
        b.method("Main", "main", [Return(Arg(2))], params=0, static=True)
        b.entry("Main.main")
        return b

    def test_builder_raises_on_malformed_when_gated(self):
        assert builder_mod.VERIFY_BUILDS  # conftest turns the gate on
        with pytest.raises(VerificationFailure) as exc:
            self._malformed_builder("gated").build()
        assert exc.value.report.errors[0].code == verifier.ARG_RANGE

    def test_explicit_verify_false_skips_the_gate(self):
        program = self._malformed_builder("ungated").build(verify=False)
        assert not verify_program(program).ok


class TestRealWorkloads:
    @pytest.mark.parametrize("name", [
        "compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack",
        "SPECjbb2000"])
    def test_spec_benchmarks_verify_clean(self, name):
        from repro.workloads.spec import build_benchmark
        generated = build_benchmark(name, scale=0.05)
        report = verify_program(generated.program)
        assert report.ok, report.render()

    @pytest.mark.parametrize("module_name", [
        "hashmap_example", "phase_shift", "lazy_loading"])
    def test_example_workloads_verify_clean(self, module_name):
        import importlib
        module = importlib.import_module(f"repro.workloads.{module_name}")
        built = module.build(iterations=50)
        report = verify_program(built.program)
        assert report.ok, report.render()
