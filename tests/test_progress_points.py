"""Progress points: registration, marking, rates, and persistence."""

import pytest

from repro.aos.runtime import AdaptiveRuntime
from repro.jvm.program import Loop
from repro.policies import make_policy
from repro.telemetry.progress import (ProgressTracker, main_loop_points,
                                      progress_rate)
from repro.telemetry.recorder import TelemetryRecorder
from repro.workloads.hashmap_example import build as build_hashmap
from repro.workloads.spec import build_benchmark


class TestTracker:
    def test_marks_accumulate_with_clock(self):
        tracker = ProgressTracker()
        clock = {"now": 0.0}
        tracker.bind(lambda: clock["now"])
        clock["now"] = 10.0
        tracker.mark("main")
        clock["now"] = 30.0
        tracker.mark("main")
        stats = tracker.points["main"]
        assert stats.count == 2
        assert stats.first_clock == 10.0
        assert stats.last_clock == 30.0

    def test_rate_is_marks_per_1000_cycles(self):
        tracker = ProgressTracker()
        for _ in range(5):
            tracker.mark("main")
        assert tracker.rate(10_000.0) == pytest.approx(0.5)
        assert tracker.rate(10_000.0, "main") == pytest.approx(0.5)
        assert tracker.rate(0.0) == 0.0

    def test_summary_is_json_ready_and_sorted(self):
        tracker = ProgressTracker()
        tracker.mark("phase1")
        tracker.mark("phase0")
        summary = tracker.summary()
        assert list(summary) == ["phase0", "phase1"]
        assert summary["phase0"]["count"] == 1.0

    def test_telemetry_mirroring(self):
        recorder = TelemetryRecorder(label="t")
        tracker = ProgressTracker(telemetry=recorder)
        tracker.mark("main")
        tracker.mark("main")
        snapshot = recorder.snapshot()
        assert "progress/main" in snapshot.counter_series


class TestProgressRate:
    def test_from_persisted_summary(self):
        points = {"main": {"count": 4.0, "first_clock": 0.0,
                           "last_clock": 100.0}}
        assert progress_rate(points, 8_000.0) == pytest.approx(0.5)

    def test_degenerate_inputs(self):
        assert progress_rate(None, 1000.0) == 0.0
        assert progress_rate({}, 1000.0) == 0.0
        assert progress_rate({"main": {"count": 3.0}}, 0.0) == 0.0


class TestMainLoopPoints:
    def test_single_top_level_loop_is_main(self):
        generated = build_benchmark("jess", scale=0.04)
        points = main_loop_points(generated.program)
        assert list(points.values()) == ["main"]
        entry = generated.program.entry_method()
        loop_ids = {id(stmt) for stmt in entry.body
                    if isinstance(stmt, Loop)}
        assert set(points) == loop_ids

    def test_every_benchmark_has_a_progress_point(self):
        from repro.workloads.spec import BENCHMARK_ORDER
        for name in BENCHMARK_ORDER:
            generated = build_benchmark(name, scale=0.02)
            assert main_loop_points(generated.program), name


class TestRuntimeIntegration:
    def test_marks_count_completed_iterations(self):
        iterations = 800
        built = build_hashmap(iterations=iterations)
        tracker = ProgressTracker()
        result = AdaptiveRuntime(built.program, make_policy("fixed", 2),
                                 progress=tracker).run()
        assert tracker.points["main"].count == iterations
        assert result.progress_points["main"]["count"] == float(iterations)
        # Marks land on the simulated clock, within the run's span.
        assert 0.0 < result.progress_points["main"]["first_clock"]
        assert (result.progress_points["main"]["last_clock"]
                <= result.total_cycles)

    def test_rate_consistent_between_tracker_and_result(self):
        built = build_hashmap(iterations=500)
        tracker = ProgressTracker()
        result = AdaptiveRuntime(built.program, make_policy("fixed", 2),
                                 progress=tracker).run()
        assert tracker.rate(result.total_cycles) == pytest.approx(
            progress_rate(result.progress_points, result.total_cycles))
