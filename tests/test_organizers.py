"""Unit tests for the AOS organizers (with a minimal fake machine)."""

import pytest

from repro.aos.cost_accounting import (AI_ORGANIZER, CostAccounting,
                                       DECAY_ORGANIZER, METHOD_ORGANIZER)
from repro.aos.database import AOSDatabase
from repro.aos.listeners import MethodListener, TraceListener
from repro.aos.organizers import (AIOrganizer, AOSState, DCGOrganizer,
                                  DecayOrganizer, HotMethodsOrganizer,
                                  MAX_OPT_VERSIONS, MissingEdgeOrganizer)
from repro.compiler.code_cache import CodeCache
from repro.compiler.compiled_method import (CompiledMethod, GuardOption,
                                            InlineDecision, InlineNode,
                                            DIRECT, GUARDED)
from repro.jvm.costs import CostModel
from repro.jvm.frames import Frame
from repro.jvm.program import (Arg, Const, MethodDef, Return, StaticCall,
                               VirtualCall, Work)
from repro.policies.catalog import ContextInsensitive, FixedLevel
from repro.profiles.trace import TraceKey


class FakeMachine:
    """Just enough machine for organizers: a clock and an accountant."""

    def __init__(self):
        self.clock = 0.0
        self.accounting = CostAccounting()

    def charge(self, component, cycles):
        self.clock += cycles
        self.accounting.charge(component, cycles)


class FakeController:
    def __init__(self):
        self.hot = []
        self.recompiles = []

    def method_is_hot(self, method_id, samples):
        self.hot.append((method_id, samples))

    def recompile_for_missing_edge(self, method_id):
        self.recompiles.append(method_id)


def key(callee, *pairs):
    return TraceKey(callee, tuple(pairs))


@pytest.fixture
def costs():
    return CostModel()


@pytest.fixture
def state():
    return AOSState()


class TestDCGOrganizer:
    def test_drains_buffer_into_dcg(self, state, costs):
        policy = ContextInsensitive()
        listener = TraceListener(policy)
        listener.buffer.extend([key("D", ("C", 1)), key("D", ("C", 1))])
        organizer = DCGOrganizer(state, policy, costs)
        machine = FakeMachine()
        assert organizer.run(machine, listener) == 2
        assert state.dcg.weight(key("D", ("C", 1))) == 2.0
        assert listener.buffer == []
        assert machine.accounting.cycles[AI_ORGANIZER] == \
            2 * costs.dcg_ingest_cost

    def test_empty_buffer_free(self, state, costs):
        policy = ContextInsensitive()
        organizer = DCGOrganizer(state, policy, costs)
        machine = FakeMachine()
        assert organizer.run(machine, TraceListener(policy)) == 0
        assert machine.clock == 0.0


class TestAIOrganizer:
    def _feed(self, state, weight_by_key):
        for k, w in weight_by_key.items():
            state.dcg.add(k, w)

    def test_below_min_weight_no_rules(self, state, costs):
        self._feed(state, {key("D", ("C", 1)): 5.0})
        organizer = AIOrganizer(state, costs)
        organizer.run(FakeMachine())
        assert state.rules == []

    def test_enter_streak_gates_rule_creation(self, state, costs):
        self._feed(state, {key("D", ("C", 1)): 50.0})
        organizer = AIOrganizer(state, costs)
        machine = FakeMachine()
        for _ in range(organizer.ENTER_STREAK - 1):
            organizer.run(machine)
            assert state.rules == []  # not enough consecutive hot epochs
        organizer.run(machine)
        assert [r.callee for r in state.rules] == ["D"]

    def test_rule_retained_in_warm_band(self, state, costs):
        hot_key = key("D", ("C", 1))
        self._feed(state, {hot_key: 50.0, key("X", ("Y", 2)): 100.0})
        organizer = AIOrganizer(state, costs)
        machine = FakeMachine()
        organizer.run(machine)
        organizer.run(machine)
        assert any(r.callee == "D" for r in state.rules)
        # Push D's share just below the 1.5% threshold but above the
        # retention band: rule must survive.
        state.dcg.add(key("X", ("Y", 2)), 3720.0)
        for _ in range(5):
            organizer.run(machine)
        share = state.dcg.weight(hot_key) / state.dcg.total_weight
        assert share < costs.hot_edge_threshold
        assert share > costs.hot_edge_threshold * organizer.RETAIN_FRACTION
        assert any(r.callee == "D" for r in state.rules)

    def test_rule_retired_after_cold_epochs(self, state, costs):
        organizer = AIOrganizer(state, costs)
        machine = FakeMachine()
        self._feed(state, {key("D", ("C", 1)): 50.0})
        organizer.run(machine)
        organizer.run(machine)
        assert state.rules
        # Bury it far below the retention band.
        state.dcg.add(key("X", ("Y", 2)), 100_000.0)
        for _ in range(organizer.EXIT_STREAK):
            organizer.run(machine)
        assert all(r.callee != "D" for r in state.rules)

    def test_fingerprint_stable_when_rules_unchanged(self, state, costs):
        organizer = AIOrganizer(state, costs)
        machine = FakeMachine()
        self._feed(state, {key("D", ("C", 1)): 50.0})
        organizer.run(machine)
        organizer.run(machine)
        fp1 = state.rules_fingerprint
        state.dcg.add(key("D", ("C", 1)), 1.0)  # weight moves, set doesn't
        organizer.run(machine)
        assert state.rules_fingerprint == fp1


class TestHotMethodsOrganizer:
    def test_aggregates_and_reports_hot(self, state, costs):
        organizer = HotMethodsOrganizer(state, costs)
        listener = MethodListener()
        controller = FakeController()
        machine = FakeMachine()
        listener.buffer.extend(["C.m"] * costs.hot_method_samples)
        organizer.run(machine, listener, controller)
        assert controller.hot == [("C.m", float(costs.hot_method_samples))]
        assert machine.accounting.cycles[METHOD_ORGANIZER] > 0

    def test_below_bar_not_reported(self, state, costs):
        organizer = HotMethodsOrganizer(state, costs)
        listener = MethodListener()
        controller = FakeController()
        listener.buffer.extend(["C.m"] * (costs.hot_method_samples - 1))
        organizer.run(FakeMachine(), listener, controller)
        assert controller.hot == []

    def test_counts_accumulate_across_epochs(self, state, costs):
        organizer = HotMethodsOrganizer(state, costs)
        controller = FakeController()
        for _ in range(costs.hot_method_samples):
            listener = MethodListener()
            listener.buffer.append("C.m")
            organizer.run(FakeMachine(), listener, controller)
        assert controller.hot


class TestDecayOrganizer:
    def test_decays_dcg_and_method_samples(self, state, costs):
        state.dcg.add(key("D", ("C", 1)), 10.0)
        state.method_samples["C.m"] = 10.0
        organizer = DecayOrganizer(state, costs)
        machine = FakeMachine()
        organizer.run(machine)
        assert state.dcg.weight(key("D", ("C", 1))) == \
            pytest.approx(10.0 * costs.decay_rate)
        assert state.method_samples["C.m"] == \
            pytest.approx(10.0 * costs.decay_rate)
        assert machine.accounting.cycles[DECAY_ORGANIZER] > 0

    def test_tiny_method_counts_dropped(self, state, costs):
        state.method_samples["C.m"] = 0.1
        DecayOrganizer(state, costs).run(FakeMachine())
        assert "C.m" not in state.method_samples


def make_compiled(method, version=1, fingerprint=0, decisions=None):
    root = InlineNode(method, 0)
    if decisions:
        root.decisions.update(decisions)
    return CompiledMethod(root, method.bytecodes, method.bytecodes * 6,
                          method.bytecodes * 14, version, fingerprint)


class TestMissingEdgeOrganizer:
    def _setup(self, costs):
        state = AOSState()
        cache = CodeCache(costs)
        database = AOSDatabase()
        organizer = MissingEdgeOrganizer(state, cache, database, costs)
        return state, cache, database, organizer

    def _hot_method(self, state, method, costs):
        state.method_samples[method.id] = costs.hot_method_samples + 1.0

    def _method_with_call(self, callee_id="C.callee", site=5):
        body = [StaticCall(site, callee_id, dst=0), Return(Const(0))]
        return MethodDef("C", "caller", 0, True, body, bytecodes=40)

    def _callee(self):
        return MethodDef("C", "callee", 0, True,
                         [Work(30), Return(Const(0))])

    def test_missed_hot_edge_triggers_recompile(self, costs):
        state, cache, _db, organizer = self._setup(costs)
        caller = self._method_with_call()
        cache.install(make_compiled(caller, fingerprint=111))
        self._hot_method(state, caller, costs)
        state.rules_fingerprint = 222
        from repro.profiles.trace import InlineRule
        state.rules = [InlineRule(key("C.callee", ("C.caller", 5)),
                                  10.0, 0.05)]
        controller = FakeController()
        assert organizer.run(FakeMachine(), controller) == 1
        assert controller.recompiles == ["C.caller"]

    def test_cold_method_skipped(self, costs):
        state, cache, _db, organizer = self._setup(costs)
        caller = self._method_with_call()
        cache.install(make_compiled(caller, fingerprint=111))
        state.rules_fingerprint = 222
        from repro.profiles.trace import InlineRule
        state.rules = [InlineRule(key("C.callee", ("C.caller", 5)),
                                  10.0, 0.05)]
        controller = FakeController()
        assert organizer.run(FakeMachine(), controller) == 0

    def test_same_fingerprint_skipped(self, costs):
        state, cache, _db, organizer = self._setup(costs)
        caller = self._method_with_call()
        cache.install(make_compiled(caller, fingerprint=222))
        self._hot_method(state, caller, costs)
        state.rules_fingerprint = 222
        from repro.profiles.trace import InlineRule
        state.rules = [InlineRule(key("C.callee", ("C.caller", 5)),
                                  10.0, 0.05)]
        controller = FakeController()
        assert organizer.run(FakeMachine(), controller) == 0

    def test_refused_edge_not_rerequested(self, costs):
        state, cache, database, organizer = self._setup(costs)
        caller = self._method_with_call()
        cache.install(make_compiled(caller, fingerprint=111))
        self._hot_method(state, caller, costs)
        database.record_refusal("C.caller", 5, "C.callee", "large")
        state.rules_fingerprint = 222
        from repro.profiles.trace import InlineRule
        state.rules = [InlineRule(key("C.callee", ("C.caller", 5)),
                                  10.0, 0.05)]
        controller = FakeController()
        assert organizer.run(FakeMachine(), controller) == 0

    def test_already_inlined_edge_skipped(self, costs):
        state, cache, _db, organizer = self._setup(costs)
        caller = self._method_with_call()
        callee = self._callee()
        decision = InlineDecision(DIRECT,
                                  [GuardOption(callee, InlineNode(callee, 1))])
        cache.install(make_compiled(caller, fingerprint=111,
                                    decisions={5: decision}))
        self._hot_method(state, caller, costs)
        state.rules_fingerprint = 222
        from repro.profiles.trace import InlineRule
        state.rules = [InlineRule(key("C.callee", ("C.caller", 5)),
                                  10.0, 0.05)]
        controller = FakeController()
        assert organizer.run(FakeMachine(), controller) == 0

    def test_stale_guard_triggers_recompile(self, costs):
        # A guarded site whose target is no longer predicted by any rule.
        state, cache, _db, organizer = self._setup(costs)
        body = [VirtualCall(5, "poly", Arg(0), dst=0), Return(Const(0))]
        caller = MethodDef("C", "caller", 1, True, body, bytecodes=40)
        stale_target = MethodDef("A", "poly", 1, False,
                                 [Work(5), Return(Const(0))])
        decision = InlineDecision(
            GUARDED, [GuardOption(stale_target,
                                  InlineNode(stale_target, 1), "A")])
        cache.install(make_compiled(caller, fingerprint=111,
                                    decisions={5: decision}))
        self._hot_method(state, caller, costs)
        state.rules_fingerprint = 222
        state.rules = []  # every rule for the site retired
        controller = FakeController()
        assert organizer.run(FakeMachine(), controller) == 1

    def test_version_cap_respected(self, costs):
        state, cache, _db, organizer = self._setup(costs)
        caller = self._method_with_call()
        cache.install(make_compiled(caller, version=MAX_OPT_VERSIONS,
                                    fingerprint=111))
        self._hot_method(state, caller, costs)
        state.rules_fingerprint = 222
        from repro.profiles.trace import InlineRule
        state.rules = [InlineRule(key("C.callee", ("C.caller", 5)),
                                  10.0, 0.05)]
        controller = FakeController()
        assert organizer.run(FakeMachine(), controller) == 0
