"""The causal report: statistics, ranking, bundle schema, rendering."""

import json

import pytest

from repro.causal.engine import CausalConfig, run_causal
from repro.causal.report import (CAUSAL_SCHEMA, build_causal_bundle,
                                 cell_stats, component_curve,
                                 render_causal_bundle,
                                 validate_causal_bundle,
                                 write_causal_bundle)

#: One grid with a clear winner (free compiler) and a near-noop
#: (listener at 10%), three seeds for non-degenerate intervals.
GRID = CausalConfig(benchmarks=("jess",), families=("cins",),
                    components=("compile", "listener"),
                    factors=(0.1, 1.0), seeds=3, scale=0.04, jobs=1)


@pytest.fixture(scope="module")
def results():
    return run_causal(GRID)


@pytest.fixture(scope="module")
def bundle(results):
    return build_causal_bundle(results)


class TestCellStats:
    def test_fields_and_seed_count(self, results):
        stats = cell_stats(results, "jess", "cins", "compile", 1.0)
        assert stats["seeds"] == 3
        assert stats["expected_seeds"] == 3
        assert stats["mean_speedup_pct"] > 0
        assert stats["ci_low"] <= stats["mean_speedup_pct"] \
            <= stats["ci_high"]
        assert len(stats["per_seed_speedup_pct"]) == 3

    def test_missing_cell_is_noisy_with_no_mean(self, results):
        stats = cell_stats(results, "jess", "cins", "guard", 1.0)
        assert stats["seeds"] == 0
        assert stats["mean_speedup_pct"] is None
        assert stats["noisy"] is True


class TestComponentCurve:
    def test_curve_is_factor_sorted(self, results):
        curve = component_curve(results, "jess", "cins", "compile")
        assert [cell["factor"] for cell in curve["cells"]] == [0.1, 1.0]
        assert curve["peak_speedup_pct"] is not None
        assert curve["accounted_share_pct"] is not None


class TestBundle:
    def test_schema_and_ok(self, bundle):
        assert bundle["schema"] == CAUSAL_SCHEMA
        assert bundle["ok"] is True
        assert bundle["problems"] == []

    def test_ranking_prefers_the_free_compiler(self, bundle):
        names = [entry["component"] for entry in bundle["ranking"]]
        assert names[0] == "compile"
        assert set(names) == {"compile", "listener"}

    def test_validation_sign_agreement(self, bundle):
        validation = bundle["validation"]
        assert validation["top_component"] == "compile"
        assert validation["sign_agrees"] is True
        assert validation["progress_rate_speedup_pct"] > 0
        assert validation["wall_clock_speedup_pct"] > 0

    def test_bundle_is_deterministic(self, results):
        assert build_causal_bundle(results) == build_causal_bundle(results)

    def test_bundle_is_strict_json(self, bundle, tmp_path):
        # Infinite CI bounds must serialize as null, not the JSON
        # extension constants Infinity/NaN (which json.load accepts by
        # default but strict parsers reject).
        path = str(tmp_path / "causal.json")
        write_causal_bundle(path, bundle)

        def reject(constant):
            raise ValueError(f"non-strict constant {constant}")

        with open(path) as handle:
            loaded = json.loads(handle.read(), parse_constant=reject)
        assert loaded["schema"] == CAUSAL_SCHEMA


class TestValidate:
    def test_wrong_schema(self):
        problems = validate_causal_bundle({"schema": "nope"})
        assert problems and "schema" in problems[0]

    def test_missing_seed_pairs_flagged(self, bundle):
        import copy
        broken = copy.deepcopy(bundle)
        cell = broken["benchmarks"][0]["components"][0]["cells"][0]
        cell["seeds"] = 1
        problems = validate_causal_bundle(broken)
        assert any("seed pair" in problem for problem in problems)

    def test_sign_disagreement_flagged(self, bundle):
        import copy
        broken = copy.deepcopy(bundle)
        broken["validation"]["sign_agrees"] = False
        problems = validate_causal_bundle(broken)
        assert any("disagrees" in problem for problem in problems)


class TestRender:
    def test_render_mentions_components_and_verdict(self, bundle):
        text = render_causal_bundle(bundle)
        assert "What's worth optimizing" in text
        assert "compile" in text and "listener" in text
        assert "causal bundle: OK" in text
        assert "sign agrees" in text
