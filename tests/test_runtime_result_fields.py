"""Sanity contracts on every RunResult field (the harness's data model)."""

import dataclasses

import pytest

from repro.aos.runtime import AdaptiveRuntime, RunResult
from repro.policies import make_policy
from repro.workloads.spec import build_benchmark


@pytest.fixture(scope="module")
def result():
    generated = build_benchmark("mtrt", scale=0.08)
    runtime = AdaptiveRuntime(generated.program, make_policy("large", 3))
    return runtime.run()


class TestRunResultContracts:
    def test_is_a_dataclass(self):
        assert dataclasses.is_dataclass(RunResult)

    def test_identity_fields(self, result):
        assert result.program_name == "mtrt"
        assert result.policy_name == "large(max=3)"

    def test_counts_nonnegative(self, result):
        for field_name in ("opt_code_bytes", "live_opt_code_bytes",
                           "opt_compilations", "opt_inlined_bytecodes",
                           "samples_taken", "traces_recorded", "dcg_traces",
                           "rule_count", "refusals", "guard_tests",
                           "guard_misses", "dispatches", "inline_entries",
                           "calls", "osr_transfers", "invalidations"):
            assert getattr(result, field_name) >= 0, field_name

    def test_live_at_most_cumulative(self, result):
        assert result.live_opt_code_bytes <= result.opt_code_bytes

    def test_guard_misses_at_most_tests(self, result):
        assert result.guard_misses <= result.guard_tests

    def test_mean_depth_within_histogram_range(self, result):
        depths = result.depth_histogram
        assert min(depths) <= result.mean_trace_depth <= max(depths)

    def test_aos_fraction_in_unit_interval(self, result):
        assert 0.0 <= result.aos_fraction() < 1.0

    def test_app_cycles_property(self, result):
        assert result.app_cycles == result.component_cycles["app"]

    def test_compile_cycles_positive_when_compiles_happened(self, result):
        if result.opt_compilations:
            assert result.opt_compile_cycles > 0

    def test_json_serializable(self, result):
        import json
        payload = json.dumps(dataclasses.asdict(result))
        assert "mtrt" in payload
