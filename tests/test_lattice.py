"""Tests for the precision-lattice report (per-site tier comparison,
containment checking, and precision scoring vs the dynamic CCT)."""

import json

import pytest

from conftest import build_context_program
from repro.analysis.lattice import (LATTICE_KS, ContainmentViolation,
                                    LatticeReport, build_lattice_report,
                                    lattice_to_json, render_lattice)


@pytest.fixture(scope="module")
def ctx_report():
    program, sites = build_context_program()
    return build_lattice_report(program), sites


class TestReportShape:
    def test_tier_order_coarse_to_fine(self, ctx_report):
        report, _sites = ctx_report
        assert report.tiers == ("cha", "rta", "0cfa", "1cfa", "2cfa")
        assert report.ok

    def test_sizes_never_grow_along_the_chain(self, ctx_report):
        report, _sites = ctx_report
        for row in report.rows:
            sizes = [size for _tier, size in row.sizes]
            assert sizes == sorted(sizes, reverse=True)
            assert row.observed <= sizes[-1]

    def test_context_counts_recorded_per_cfa_tier(self, ctx_report):
        report, sites = ctx_report
        (row,) = [r for r in report.rows if r.site == sites["disp"]]
        contexts = dict(row.contexts)
        assert contexts["0cfa"] == 1
        assert contexts["1cfa"] == 2


class TestContextRescue:
    def test_dispatch_rescued_by_one_cfa(self, ctx_report):
        report, sites = ctx_report
        assert report.rescued_sites("1cfa") == [sites["disp"]]
        assert report.rescued_sites("0cfa") == []
        (row,) = [r for r in report.rows if r.site == sites["disp"]]
        assert row.rescued_by("1cfa")
        assert row.size("rta") == 2

    def test_jess_has_rta_poly_one_cfa_mono_sites(self):
        # The acceptance criterion the CI lattice-check greps for: at
        # least one site RTA calls polymorphic that 1-CFA proves
        # context-monomorphic, on a real benchmark.
        from repro.workloads.spec import build_benchmark
        program = build_benchmark("jess", scale=0.05).program
        report = build_lattice_report(program)
        assert report.ok, [v.describe() for v in report.violations]
        assert report.rescued_sites("1cfa")


class TestPrecisionScores:
    def test_context_tiers_beat_flat_tiers(self, ctx_report):
        report, _sites = ctx_report
        scores = {s.tier: s for s in report.scores}
        # Flat tiers must answer one target for a site whose dynamic
        # majority depends on the caller: they lose half the dispatches.
        assert scores["rta"].score == pytest.approx(0.5)
        assert scores["0cfa"].score == pytest.approx(0.5)
        assert scores["1cfa"].score == pytest.approx(1.0)
        assert scores["2cfa"].score == pytest.approx(1.0)

    def test_every_tier_scored_over_the_same_groups(self, ctx_report):
        report, _sites = ctx_report
        groups = {s.groups_scored for s in report.scores}
        dispatches = {s.dispatches for s in report.scores}
        assert len(groups) == 1 and len(dispatches) == 1


class TestSerialization:
    def test_json_payload_is_serializable_and_complete(self, ctx_report):
        report, sites = ctx_report
        payload = lattice_to_json(report)
        json.dumps(payload)  # must not raise
        assert payload["ok"]
        assert payload["tiers"] == list(report.tiers)
        assert payload["rescued_sites"]["1cfa"] == [sites["disp"]]
        assert payload["precision_scores"]["2cfa"]["score"] == 1.0
        (row,) = [r for r in payload["sites"]
                  if r["site"] == sites["disp"]]
        assert row["sizes"]["rta"] == 2
        assert row["sizes"]["1cfa"] == 2       # union over contexts
        assert row["context_monomorphic"] == ["1cfa", "2cfa"]

    def test_render_mentions_rescue_and_scores(self, ctx_report):
        report, _sites = ctx_report
        text = render_lattice(report)
        assert "rta-poly->1cfa-ctx-mono: 1 site(s)" in text
        assert "precision scores" in text
        assert "static containment: ok at every site" in text


class TestViolations:
    def test_violation_breaks_ok_and_renders(self, ctx_report):
        report, _sites = ctx_report
        violation = ContainmentViolation(site=7, coarse="rta", fine="1cfa",
                                         extra=("Ghost.ping",))
        broken = LatticeReport(program_name=report.program_name,
                               tiers=report.tiers, rows=report.rows,
                               violations=(violation,),
                               scores=report.scores)
        assert not broken.ok
        assert "Ghost.ping" in violation.describe()
        assert "CONTAINMENT VIOLATIONS" in render_lattice(broken)
        assert not lattice_to_json(broken)["ok"]


class TestKs:
    def test_default_ks_cover_supported_depths(self):
        assert LATTICE_KS == (0, 1, 2)
