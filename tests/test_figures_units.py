"""Additional unit tests for the figure formatters' internals."""

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.figures import HARMEAN, _metric_matrix
from repro.experiments.runner import SweepResults, run_cell


@pytest.fixture(scope="module")
def two_cell_results():
    config = SweepConfig(benchmarks=("jess",), families=("fixed",),
                         depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
    cells = {}
    cells[("jess", "cins", 1)] = run_cell("jess", "cins", 1, (0.0,), 0.05)
    cells[("jess", "fixed", 2)] = run_cell("jess", "fixed", 2, (0.0,), 0.05)
    return SweepResults(config=config, cells=cells)


class TestMetricMatrix:
    def test_matrix_has_harmean_row(self, two_cell_results):
        matrix = _metric_matrix(two_cell_results, "fixed",
                                two_cell_results.speedup_percent)
        assert HARMEAN in matrix
        assert set(matrix["jess"]) == {2}

    def test_single_benchmark_harmean_equals_value(self, two_cell_results):
        matrix = _metric_matrix(two_cell_results, "fixed",
                                two_cell_results.speedup_percent)
        assert matrix[HARMEAN][2] == pytest.approx(matrix["jess"][2],
                                                   abs=1e-9)


class TestRelativeMetricEdgeCases:
    def test_zero_baseline_code_returns_zero(self, two_cell_results):
        # Force a pathological baseline with zero code bytes.
        baseline = two_cell_results.baseline("jess")
        saved = baseline.live_opt_code_bytes
        baseline.live_opt_code_bytes = 0
        try:
            assert two_cell_results.code_size_percent(
                "jess", "fixed", 2) == 0.0
        finally:
            baseline.live_opt_code_bytes = saved

    def test_zero_baseline_compile_returns_zero(self, two_cell_results):
        baseline = two_cell_results.baseline("jess")
        saved = baseline.opt_compile_cycles
        baseline.opt_compile_cycles = 0
        try:
            assert two_cell_results.compile_time_percent(
                "jess", "fixed", 2) == 0.0
        finally:
            baseline.opt_compile_cycles = saved
