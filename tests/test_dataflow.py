"""Unit tests for the speculation dataflow framework and its clients."""

from repro.analysis.dataflow import (ACTION_ELIDE, ACTION_GUARD,
                                     ACTION_REFUSE, ALWAYS_PRE,
                                     AvailableGuardAnalysis, NOT_PRE,
                                     PreexistenceAnalysis,
                                     SpeculationAnalysis, join_pre,
                                     static_speculation_summary)
from repro.jvm.costs import DEFAULT_COSTS
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (Arg, Const, If, Let, Local, Loop, New,
                               NewPool, Pick, Return, VirtualCall, Work)
from repro.workloads.builder import ProgramBuilder


def shapes_program(extra_main=()):
    """Shape/Circle/Square/Exotic, with allocation churn for the cones."""
    b = ProgramBuilder("dfshapes")
    b.cls("Shape")
    b.cls("Circle", superclass="Shape")
    b.cls("Square", superclass="Shape")
    b.cls("Exotic", superclass="Shape")
    b.cls("Other")  # unrelated churn: dilutes the area cones' risk share
    b.cls("App")
    b.method("Shape", "area", [Work(6), Return(Const(0))], params=1)
    b.method("Circle", "area", [Work(6), Return(Const(1))], params=1)
    b.method("Square", "area", [Work(6), Return(Const(2))], params=1)
    b.method("Exotic", "area", [Work(6), Return(Const(3))], params=1)
    b.static_method("App", "use", [
        VirtualCall(0, "area", Arg(0), dst=0), Return(Local(0))
    ], params=1, locals_=2)
    b.static_method("App", "use_fresh", [
        New(1, "Circle"),
        VirtualCall(1, "area", Local(1), dst=0), Return(Local(0))
    ], params=0, locals_=3)
    # Conduit: a static call forwarding its own parameter as receiver.
    b.static_method("App", "conduit", [
        VirtualCall(2, "area", Arg(0), dst=0), Return(Local(0))
    ], params=1, locals_=2)
    b.static_method("App", "main", [
        New(0, "Circle"),
        New(1, "Square"),
        New(2, "Exotic"),
        Loop(Const(3), 4, [New(3, "Other")]),
        *extra_main,
        Return(Const(0)),
    ], locals_=5)
    b.entry("App.main")
    return b.build()


class TestJoinPre:
    def test_none_absorbs(self):
        assert join_pre(NOT_PRE, ALWAYS_PRE) is None
        assert join_pre(frozenset({1}), NOT_PRE) is None

    def test_sets_union(self):
        assert join_pre(frozenset({0}), frozenset({1})) == frozenset({0, 1})
        assert join_pre(ALWAYS_PRE, ALWAYS_PRE) == ALWAYS_PRE


def _analyze_pre(body, params=2, locals_=4):
    b = ProgramBuilder("pre")
    b.cls("C")
    b.method("C", "ping", [Work(1), Return(Const(0))], params=1)
    b.cls("M")
    b.static_method("M", "m", list(body) + [Return(Const(0))],
                    params=params, locals_=locals_)
    b.static_method("M", "main", [Return(Const(0))])
    b.entry("M.main")
    program = b.build()
    analysis = PreexistenceAnalysis()
    analysis.analyze(program.method("M.m"))
    return analysis


class TestPreexistenceFacts:
    def test_arg_receiver_depends_on_parameter(self):
        analysis = _analyze_pre([VirtualCall(0, "ping", Arg(1), dst=0)])
        assert analysis.call_facts[0].receiver == frozenset({1})

    def test_new_receiver_not_preexistent(self):
        analysis = _analyze_pre([
            New(0, "C"), VirtualCall(0, "ping", Local(0), dst=1)])
        assert analysis.call_facts[0].receiver is NOT_PRE

    def test_call_result_not_preexistent(self):
        analysis = _analyze_pre([
            VirtualCall(0, "ping", Arg(0), dst=0),
            VirtualCall(1, "ping", Local(0), dst=1)])
        assert analysis.call_facts[1].receiver is NOT_PRE

    def test_pick_from_parameter_pool_preexists(self):
        analysis = _analyze_pre([
            VirtualCall(0, "ping", Pick(Arg(0), Const(2)), dst=0)])
        assert analysis.call_facts[0].receiver == frozenset({0})

    def test_pool_allocated_here_does_not_preexist(self):
        analysis = _analyze_pre([
            NewPool(0, ("C", "C")),
            VirtualCall(0, "ping", Pick(Local(0), Const(1)), dst=1)])
        assert analysis.call_facts[0].receiver is NOT_PRE

    def test_branch_join_absorbs_allocation(self):
        analysis = _analyze_pre([
            If(Arg(0), [Let(0, Arg(1))], [New(0, "C")]),
            VirtualCall(0, "ping", Local(0), dst=1)])
        assert analysis.call_facts[0].receiver is NOT_PRE

    def test_branch_join_unions_parameter_sets(self):
        analysis = _analyze_pre([
            If(Arg(0), [Let(0, Arg(0))], [Let(0, Arg(1))]),
            VirtualCall(0, "ping", Local(0), dst=1)])
        assert analysis.call_facts[0].receiver == frozenset({0, 1})

    def test_loop_fixpoint_reaches_backedge_fact(self):
        # First iteration sees the entry value (Arg 1); later iterations
        # see the New from the previous trip.  The recorded fact is the
        # fixpoint join of both, which must be "not preexistent".
        analysis = _analyze_pre([
            Let(0, Arg(1)),
            Loop(Const(3), 1, [
                VirtualCall(0, "ping", Local(0), dst=2),
                New(0, "C"),
            ])])
        assert analysis.call_facts[0].receiver is NOT_PRE


def _analyze_avail(body, params=2, locals_=4):
    b = ProgramBuilder("avail")
    b.cls("C")
    b.method("C", "ping", [Work(1), Return(Const(0))], params=1)
    b.method("C", "pong", [Work(1), Return(Const(0))], params=1)
    b.cls("M")
    b.static_method("M", "m", list(body) + [Return(Const(0))],
                    params=params, locals_=locals_)
    b.static_method("M", "main", [Return(Const(0))])
    b.entry("M.main")
    program = b.build()
    analysis = AvailableGuardAnalysis()
    analysis.analyze(program.method("M.m"))
    return analysis


class TestAvailableGuards:
    def test_straight_line_dominator_available(self):
        analysis = _analyze_avail([
            VirtualCall(0, "ping", Arg(0), dst=0),
            VirtualCall(1, "pong", Arg(0), dst=1)])
        assert (0, "ping", ("arg", 0)) in analysis.available[1]

    def test_reassigned_local_kills_fact(self):
        analysis = _analyze_avail([
            Let(0, Arg(0)),
            VirtualCall(0, "ping", Local(0), dst=1),
            Let(0, Arg(1)),
            VirtualCall(1, "pong", Local(0), dst=1)])
        assert analysis.available[1] == frozenset()

    def test_one_branch_does_not_dominate(self):
        analysis = _analyze_avail([
            If(Arg(1), [VirtualCall(0, "ping", Arg(0), dst=0)], []),
            VirtualCall(1, "pong", Arg(0), dst=1)])
        assert analysis.available[1] == frozenset()

    def test_call_result_clobber_kills_receiver_fact(self):
        analysis = _analyze_avail([
            Let(0, Arg(0)),
            VirtualCall(0, "ping", Local(0), dst=0),
            VirtualCall(1, "pong", Local(0), dst=1)])
        # Site 0's dst is the receiver local itself: fact must not survive.
        assert analysis.available[1] == frozenset()

    def test_loop_entry_guard_stays_available(self):
        analysis = _analyze_avail([
            VirtualCall(0, "ping", Arg(0), dst=1),
            Loop(Const(3), 2, [VirtualCall(1, "pong", Arg(0), dst=1)])])
        assert (0, "ping", ("arg", 0)) in analysis.available[1]


class TestReceiverPreexistsThroughContext:
    def _spec(self, program):
        return SpeculationAnalysis(program, ClassHierarchy(program))

    def test_root_parameter_receiver_preexists(self):
        program = shapes_program()
        spec = self._spec(program)
        stmt = program.method("App.use").body[0]
        assert spec.receiver_preexists(stmt, (("App.use", 0),))

    def test_fresh_allocation_does_not_preexist(self):
        program = shapes_program()
        spec = self._spec(program)
        stmt = program.method("App.use_fresh").body[1]
        assert not spec.receiver_preexists(stmt, (("App.use_fresh", 1),))

    def test_preexistence_propagates_through_inlined_conduit(self):
        from repro.jvm.program import StaticCall
        program = shapes_program(extra_main=(
            StaticCall(10, "App.conduit", args=(Local(0),), dst=3),))
        spec = self._spec(program)
        stmt = program.method("App.conduit").body[0]
        # Inlined into main, the conduit's parameter is main's local 0,
        # which main allocated itself: not preexistent.
        assert not spec.receiver_preexists(
            stmt, (("App.conduit", 2), ("App.main", 10)))
        # Inlined into use (whose Arg 0 preexists), it is.
        b_stmt = program.method("App.use").body[0]
        assert spec.receiver_preexists(
            b_stmt, (("App.use", 0),))


class TestConesAndRisk:
    def test_cone_lists_unloaded_breakers_only(self):
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        hierarchy.mark_loaded("Circle")
        spec = SpeculationAnalysis(program, hierarchy)
        target = program.method("Circle.area")
        cone, risk = spec.assumption_risk("area", target)
        # Square and Exotic both allocate in main and override area.
        assert cone == ("Exotic", "Square")
        assert 0.0 < risk <= 1.0

    def test_unallocatable_class_excluded(self):
        # Shape itself is never allocated: it cannot load, so it is not
        # in any cone even though loading it would break the assumption.
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        hierarchy.mark_loaded("Circle")
        spec = SpeculationAnalysis(program, hierarchy)
        cone, _risk = spec.assumption_risk("area", program.method("Circle.area"))
        assert "Shape" not in cone

    def test_class_load_shrinks_cone_via_generation(self):
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        hierarchy.mark_loaded("Circle")
        spec = SpeculationAnalysis(program, hierarchy)
        target = program.method("Circle.area")
        cone_before, _ = spec.assumption_risk("area", target)
        hierarchy.mark_loaded("Square")
        cone_after, _ = spec.assumption_risk("area", target)
        assert "Square" in cone_before and "Square" not in cone_after

    def test_exhaustive_full_cover_has_empty_cone(self):
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        spec = SpeculationAnalysis(program, hierarchy)
        targets = [program.method(m) for m in
                   ("Shape.area", "Circle.area", "Square.area",
                    "Exotic.area")]
        cone, risk = spec.exhaustive_risk("area", targets)
        assert cone == () and risk == 0.0

    def test_exhaustive_missing_target_appears_in_cone(self):
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        spec = SpeculationAnalysis(program, hierarchy)
        targets = [program.method(m) for m in
                   ("Shape.area", "Circle.area", "Square.area")]
        cone, risk = spec.exhaustive_risk("area", targets)
        assert cone == ("Exotic",)
        assert risk > 0.0


class TestSpeculateExhaustive:
    def _setup(self, loaded=("Circle", "Square"), costs=DEFAULT_COSTS):
        program = shapes_program()
        hierarchy = ClassHierarchy(program)
        for name in loaded:
            hierarchy.mark_loaded(name)
        return program, SpeculationAnalysis(program, hierarchy, costs)

    def test_loaded_escape_forces_guard(self):
        program, spec = self._setup(loaded=("Circle", "Square", "Exotic"))
        stmt = program.method("App.use").body[0]
        targets = [program.method("Circle.area"),
                   program.method("Square.area")]
        verdict = spec.speculate_exhaustive(stmt, (("App.use", 0),), targets)
        assert verdict.action == ACTION_GUARD
        assert verdict.risk == 1.0

    def test_full_cover_elides_unconditionally(self):
        program, spec = self._setup()
        stmt = program.method("App.use_fresh").body[1]  # not preexistent
        targets = [program.method(m) for m in
                   ("Shape.area", "Circle.area", "Square.area",
                    "Exotic.area")]
        verdict = spec.speculate_exhaustive(
            stmt, (("App.use_fresh", 1),), targets)
        assert verdict.action == ACTION_ELIDE
        assert verdict.cone_size == 0

    def test_loaded_cover_needs_preexistence(self):
        program, spec = self._setup()
        targets = [program.method("Circle.area"),
                   program.method("Square.area")]
        pre_stmt = program.method("App.use").body[0]
        fresh_stmt = program.method("App.use_fresh").body[1]
        pre = spec.speculate_exhaustive(pre_stmt, (("App.use", 0),), targets)
        fresh = spec.speculate_exhaustive(
            fresh_stmt, (("App.use_fresh", 1),), targets)
        assert pre.action == ACTION_ELIDE and pre.cone_size > 0
        assert fresh.action == ACTION_GUARD

    def test_risk_threshold_blocks_elision(self):
        costs = DEFAULT_COSTS.replace(speculation_elide_max_risk=0.0)
        program, spec = self._setup(costs=costs)
        targets = [program.method("Circle.area"),
                   program.method("Square.area")]
        stmt = program.method("App.use").body[0]
        verdict = spec.speculate_exhaustive(stmt, (("App.use", 0),), targets)
        assert verdict.action == ACTION_GUARD
        assert verdict.risk > 0.0

    def test_loaded_sole_refusal_over_threshold(self):
        costs = DEFAULT_COSTS.replace(speculation_refuse_min_risk=0.0)
        program, spec = self._setup(loaded=("Circle",), costs=costs)
        stmt = program.method("App.use").body[0]
        verdict = spec.speculate(stmt, (("App.use", 0),),
                                 program.method("Circle.area"))
        assert verdict.action == ACTION_REFUSE


class TestStaticSummary:
    def test_summary_shape_and_counts(self):
        program = shapes_program()
        summary = static_speculation_summary(program)
        assert summary["virtual_sites"] == 3
        # App.use and App.conduit dispatch on parameters; use_fresh on a New.
        assert summary["preexistent_receiver_sites"] == 2
        assert summary["assumptions"] > 0
        assert 0.0 <= summary["mean_risk"] <= summary["max_risk"] <= 1.0

    def test_summary_on_benchmark(self):
        from repro.workloads.spec import build_benchmark
        built = build_benchmark("jess", scale=0.05)
        summary = static_speculation_summary(built.program)
        assert summary["virtual_sites"] > 0
        assert summary["preexistent_receiver_sites"] > 0
