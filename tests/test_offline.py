"""Tests for the offline-vs-online comparison experiment."""

import pytest

from repro.experiments.offline import (OfflineComparison,
                                       collect_full_profile,
                                       compare_online_offline,
                                       derive_offline_rules,
                                       run_with_pinned_rules)
from repro.jvm.costs import DEFAULT_COSTS
from repro.profiles.dcg import DynamicCallGraph
from repro.profiles.trace import TraceKey

SCALE = 0.1


class TestProfileCollection:
    def test_training_run_collects_undecayed_profile(self):
        dcg, result = collect_full_profile("jess", "fixed", 2, scale=SCALE)
        assert result.total_cycles > 0
        assert dcg.total_weight > 0
        # Decay disabled: total weight equals samples recorded (weight 1
        # each, minus nothing).
        assert dcg.total_weight == pytest.approx(result.traces_recorded)


class TestRuleDerivation:
    def test_threshold_applied_once(self):
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("Hot", (("C", 1),)), 1000.0)
        dcg.add(TraceKey("Cold", (("C", 2),)), 1.0)
        rules = derive_offline_rules(dcg)
        assert [r.callee for r in rules] == ["Hot"]
        assert rules[0].share == pytest.approx(1000.0 / 1001.0)

    def test_empty_profile_no_rules(self):
        assert derive_offline_rules(DynamicCallGraph()) == []


class TestPinnedRun:
    def test_rules_stay_pinned(self):
        dcg, _ = collect_full_profile("jess", "fixed", 2, scale=SCALE)
        rules = derive_offline_rules(dcg)
        result = run_with_pinned_rules("jess", "fixed", 2, rules,
                                       scale=SCALE)
        assert result.rule_count == len(rules)

    def test_pinned_run_completes_correctly(self):
        dcg, online = collect_full_profile("db", "fixed", 2, scale=SCALE)
        rules = derive_offline_rules(dcg)
        offline = run_with_pinned_rules("db", "fixed", 2, rules,
                                        scale=SCALE)
        assert offline.return_value == online.return_value


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        cmp_, rendered = compare_online_offline("jess", "fixed", 3,
                                                scale=0.3)
        return cmp_, rendered

    def test_offline_compiles_no_more_than_online(self, comparison):
        cmp_, _ = comparison
        # Frozen rules mean no missing-edge churn: compile count can only
        # be lower (or equal) offline.
        assert cmp_.offline.opt_compilations <= cmp_.online.opt_compilations

    def test_penalty_metrics_finite(self, comparison):
        cmp_, _ = comparison
        assert -50.0 < cmp_.online_penalty_percent < 100.0
        assert cmp_.compile_churn_ratio >= 1.0

    def test_rendering(self, comparison):
        _, rendered = comparison
        assert "online" in rendered and "offline" in rendered
        assert "penalty" in rendered
