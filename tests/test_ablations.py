"""Tests for the ablation experiments and the two-phase workload."""

import pytest

from repro.aos.runtime import AdaptiveRuntime
from repro.experiments.ablations import decay_ablation, threshold_sweep
from repro.jvm.costs import DEFAULT_COSTS
from repro.policies import make_policy
from repro.workloads import phase_shift


class TestTwoPhaseWorkload:
    def test_builds_and_runs(self):
        built = phase_shift.build(iterations=2000)
        runtime = AdaptiveRuntime(built.program, make_policy("cins", 1))
        result = runtime.run()
        assert result.total_cycles > 0
        assert result.dispatches + result.inline_entries > 0

    def test_phase_switch_changes_receivers(self):
        built = phase_shift.build(iterations=3000, switch_fraction=0.5)
        runtime = AdaptiveRuntime(built.program, make_policy("cins", 1))
        runtime.run()
        dist = runtime.state.dcg.site_target_distribution(
            "App.work", built.step_site)
        # Both phase targets were observed at the step site.
        assert "A.step" in dist and "B.step" in dist

    def test_switch_fraction_skews_distribution(self):
        built = phase_shift.build(iterations=3000, switch_fraction=0.9)
        runtime = AdaptiveRuntime(
            built.program, make_policy("cins", 1),
            # Disable decay so raw sample proportions survive.
            DEFAULT_COSTS.replace(decay_period=10 ** 12))
        runtime.run()
        dist = runtime.state.dcg.site_target_distribution(
            "App.work", built.step_site)
        assert dist.get("A.step", 0.0) > dist.get("B.step", 0.0)


class TestThresholdSweep:
    def test_rules_monotone_in_threshold(self):
        points, rendered = threshold_sweep(
            "db", thresholds=(0.005, 0.03), scale=0.15)
        assert points[0].rules >= points[-1].rules
        assert "threshold" in rendered

    def test_points_carry_metrics(self):
        points, _ = threshold_sweep("jess", thresholds=(0.015,), scale=0.1)
        point = points[0]
        assert point.total_cycles > 0
        assert point.live_code_bytes >= 0


class TestDecayAblation:
    def test_decay_reduces_staleness(self):
        # The run must span several decay periods for decay to matter;
        # 50k iterations is the smallest length with a stable effect.
        outcomes, rendered = decay_ablation(iterations=50_000,
                                            switch_fraction=0.75)
        assert outcomes["decay on"].guard_misses <= \
            outcomes["decay off"].guard_misses
        assert "decay" in rendered
