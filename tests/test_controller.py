"""Unit tests for the controller's analytic model and compilation thread."""

import pytest

from repro.aos.controller import (CompilationThread, Controller,
                                  EXPANSION_GUESS)
from repro.aos.cost_accounting import COMPILATION, CONTROLLER, CostAccounting
from repro.aos.database import AOSDatabase
from repro.aos.organizers import AOSState, MAX_OPT_VERSIONS
from repro.compiler.code_cache import CodeCache
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import Const, Return, StaticCall, Work
from repro.workloads.builder import ProgramBuilder


class FakeMachine:
    def __init__(self):
        self.clock = 0.0
        self.accounting = CostAccounting()

    def charge(self, component, cycles):
        self.clock += cycles
        self.accounting.charge(component, cycles)


def build_env(costs=None):
    costs = costs or CostModel()
    b = ProgramBuilder("ctl")
    b.cls("C")
    b.static_method("C", "small_hot", [Work(20), Return(Const(0))])
    b.static_method("C", "big", [Work(400), Return(Const(0))])
    b.static_method("C", "main", [StaticCall(0, "C.small_hot"),
                                  Return(Const(0))])
    b.entry("C.main")
    program = b.build()
    hierarchy = ClassHierarchy(program)
    state = AOSState()
    # The controller defers first compiles until the profile matures; give
    # the tests a mature profile up front.
    from repro.profiles.trace import TraceKey
    state.dcg.add(TraceKey("C.small_hot", (("C.main", 0),)),
                  costs.first_compile_min_weight + 10)
    cache = CodeCache(costs)
    database = AOSDatabase()
    controller = Controller(program, hierarchy, state, cache, database,
                            costs)
    thread = CompilationThread(program, hierarchy, cache, database, costs)
    return (program, hierarchy, state, cache, database, controller, thread,
            costs)


class TestAnalyticModel:
    def test_hot_small_method_approved(self):
        (_p, _h, _s, cache, _db, controller, thread, costs) = build_env()
        machine = FakeMachine()
        samples = 50.0  # plenty of estimated future time
        controller.method_is_hot("C.small_hot", samples)
        assert controller.process_events(machine) == 1
        thread.run(machine, controller.compilation_queue)
        assert cache.opt_version("C.small_hot") is not None

    def test_barely_sampled_method_denied(self):
        (_p, _h, _s, cache, _db, controller, _t, costs) = build_env()
        machine = FakeMachine()
        # One sample of a big method: benefit < compile cost.
        controller.method_is_hot("C.big", 1.0)
        assert controller.process_events(machine) == 0
        assert cache.opt_version("C.big") is None

    def test_model_formula(self):
        (_p, _h, _s, _c, _db, controller, _t, costs) = build_env()
        # The break-even point: benefit == cost exactly at samples*.
        method_bc = 401  # Work(400) + Return
        cost = method_bc * EXPANSION_GUESS * costs.opt_compile_cycles_per_bc
        speedup = costs.estimated_opt_speedup
        break_even = cost / (costs.sample_interval * (1 - 1 / speedup))
        assert not controller._approve_first_compile("C.big",
                                                     break_even * 0.99)
        assert controller._approve_first_compile("C.big", break_even * 1.01)

    def test_controller_cycles_charged(self):
        (_p, _h, _s, _c, _db, controller, _t, costs) = build_env()
        machine = FakeMachine()
        controller.method_is_hot("C.small_hot", 50.0)
        controller.process_events(machine)
        assert machine.accounting.cycles[CONTROLLER] == \
            costs.controller_event_cost

    def test_already_optimized_hot_event_ignored(self):
        (_p, _h, _s, cache, _db, controller, thread, _c) = build_env()
        machine = FakeMachine()
        controller.method_is_hot("C.small_hot", 50.0)
        controller.process_events(machine)
        thread.run(machine, controller.compilation_queue)
        controller.method_is_hot("C.small_hot", 99.0)
        assert controller.process_events(machine) == 0


class TestMissingEdgeRecompiles:
    def test_recompile_with_new_fingerprint(self):
        (_p, _h, state, cache, _db, controller, thread, costs) = build_env()
        machine = FakeMachine()
        controller.method_is_hot("C.small_hot", 50.0)
        controller.process_events(machine)
        thread.run(machine, controller.compilation_queue)
        assert cache.opt_version("C.small_hot").version == 1

        state.rules_fingerprint = 12345
        machine.clock += costs.recompile_cooldown + 1
        controller.recompile_for_missing_edge("C.small_hot")
        assert controller.process_events(machine) == 1
        thread.run(machine, controller.compilation_queue)
        assert cache.opt_version("C.small_hot").version == 2

    def test_cooldown_blocks_rapid_recompiles(self):
        (_p, _h, state, cache, _db, controller, thread, costs) = build_env()
        machine = FakeMachine()
        controller.method_is_hot("C.small_hot", 50.0)
        controller.process_events(machine)
        thread.run(machine, controller.compilation_queue)

        state.rules_fingerprint = 1
        controller.recompile_for_missing_edge("C.small_hot")
        # Too soon after the first compile: deferred.
        assert controller.process_events(machine) == 0

    def test_same_fingerprint_not_recompiled(self):
        (_p, _h, state, cache, _db, controller, thread, costs) = build_env()
        machine = FakeMachine()
        controller.method_is_hot("C.small_hot", 50.0)
        controller.process_events(machine)
        thread.run(machine, controller.compilation_queue)
        machine.clock += costs.recompile_cooldown + 1
        state.rules_fingerprint = \
            cache.opt_version("C.small_hot").rules_fingerprint
        controller.recompile_for_missing_edge("C.small_hot")
        assert controller.process_events(machine) == 0

    def test_version_cap(self):
        (_p, _h, state, cache, _db, controller, thread, costs) = build_env()
        machine = FakeMachine()
        controller.method_is_hot("C.small_hot", 50.0)
        controller.process_events(machine)
        thread.run(machine, controller.compilation_queue)
        for fp in range(2, MAX_OPT_VERSIONS + 3):
            machine.clock += costs.recompile_cooldown + 1
            state.rules_fingerprint = fp
            controller.recompile_for_missing_edge("C.small_hot")
            controller.process_events(machine)
            thread.run(machine, controller.compilation_queue)
        assert cache.opt_version("C.small_hot").version <= MAX_OPT_VERSIONS

    def test_never_compiled_missing_edge_compiles(self):
        (_p, _h, _s, cache, _db, controller, thread, _c) = build_env()
        machine = FakeMachine()
        controller.recompile_for_missing_edge("C.small_hot")
        assert controller.process_events(machine) == 1
        thread.run(machine, controller.compilation_queue)
        assert cache.opt_version("C.small_hot") is not None


class TestCompilationThread:
    def test_charges_compilation_component(self):
        (_p, _h, _s, _cache, database, controller, thread, _c) = build_env()
        machine = FakeMachine()
        controller.method_is_hot("C.small_hot", 50.0)
        controller.process_events(machine)
        done = thread.run(machine, controller.compilation_queue)
        assert done == 1
        assert machine.accounting.cycles[COMPILATION] > 0
        assert len(database.compilations) == 1
        event = database.compilations[0]
        assert event.method_id == "C.small_hot"
        assert event.reason == "hot"
