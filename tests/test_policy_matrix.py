"""Smoke matrix: every policy family runs end-to-end on real workloads.

These are coarse integration tests; the precise figure shapes live in the
bench harness.  Here we assert the invariants that must hold for *any*
policy: accounting consistency, depth bounds, and profile sanity.
"""

import pytest

from repro.aos.cost_accounting import ALL_COMPONENTS
from repro.aos.runtime import AdaptiveRuntime
from repro.policies import POLICY_LABELS, make_policy
from repro.workloads.spec import build_benchmark

DEPTH = 3


@pytest.fixture(scope="module")
def results():
    out = {}
    for label in POLICY_LABELS:
        generated = build_benchmark("jess", scale=0.15)
        runtime = AdaptiveRuntime(generated.program,
                                  make_policy(label, DEPTH))
        out[label] = runtime.run()
    return out


class TestPolicyMatrix:
    @pytest.mark.parametrize("label", POLICY_LABELS)
    def test_run_completes(self, results, label):
        assert results[label].return_value == 0

    @pytest.mark.parametrize("label", POLICY_LABELS)
    def test_accounting_consistent(self, results, label):
        result = results[label]
        total = sum(result.component_cycles[c] for c in ALL_COMPONENTS)
        assert total == pytest.approx(result.total_cycles)

    @pytest.mark.parametrize("label", POLICY_LABELS)
    def test_trace_depths_bounded(self, results, label):
        result = results[label]
        max_allowed = 1 if label == "cins" else DEPTH
        assert max(result.depth_histogram) <= max_allowed

    def test_cins_always_depth_one(self, results):
        assert set(results["cins"].depth_histogram) == {1}

    def test_fixed_reaches_beyond_depth_one(self, results):
        assert max(results["fixed"].depth_histogram) > 1

    def test_adaptive_policies_shallower_than_fixed(self, results):
        fixed_depth = results["fixed"].mean_trace_depth
        for label in ("paramLess", "class", "hybrid1", "imprecision"):
            assert results[label].mean_trace_depth <= fixed_depth + 0.3

    @pytest.mark.parametrize("label", POLICY_LABELS)
    def test_some_optimization_happened(self, results, label):
        result = results[label]
        assert result.opt_compilations > 0
        assert result.rule_count > 0

    @pytest.mark.parametrize("label", POLICY_LABELS)
    def test_table1_counts_policy_independent(self, results, label):
        result = results[label]
        assert result.classes_loaded == 176
        assert result.methods_compiled == 1101
