"""Tests for the content-addressed per-cell sweep cache and its keys."""

import json
import os

import pytest

from repro.experiments.cell_cache import (CellCache, cell_cache_root,
                                          result_from_dict, result_to_dict)
from repro.experiments.config import (SweepConfig, cell_fingerprint,
                                      cost_model_fingerprint)
from repro.experiments.runner import run_single
from repro.jvm.costs import DEFAULT_COSTS


@pytest.fixture(scope="module")
def result():
    return run_single("jess", "cins", 1, scale=0.05)


class TestFingerprint:
    def test_deterministic(self):
        a = cell_fingerprint("jess", "fixed", 2, (0.0, 0.5), 0.5)
        b = cell_fingerprint("jess", "fixed", 2, (0.0, 0.5), 0.5)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_sensitive_to_every_result_defining_input(self):
        base = cell_fingerprint("jess", "fixed", 2, (0.0, 0.5), 0.5)
        assert cell_fingerprint("db", "fixed", 2, (0.0, 0.5), 0.5) != base
        assert cell_fingerprint("jess", "class", 2, (0.0, 0.5), 0.5) != base
        assert cell_fingerprint("jess", "fixed", 3, (0.0, 0.5), 0.5) != base
        assert cell_fingerprint("jess", "fixed", 2, (0.0,), 0.5) != base
        assert cell_fingerprint("jess", "fixed", 2, (0.0, 0.5), 0.25) != base
        tweaked = DEFAULT_COSTS.replace(guard_test=DEFAULT_COSTS.guard_test + 1)
        assert cell_fingerprint("jess", "fixed", 2, (0.0, 0.5), 0.5,
                                costs=tweaked) != base

    def test_execution_knobs_do_not_enter_the_fingerprint(self):
        # jobs / cell_timeout change how a sweep runs, not what a cell
        # computes: configs differing only there share cell fingerprints.
        a = SweepConfig(phases=(0.0,), scale=0.5, jobs=1)
        b = SweepConfig(phases=(0.0,), scale=0.5, jobs=8, cell_timeout=60.0)
        assert a.cell_fingerprint("jess", "fixed", 2) == \
            b.cell_fingerprint("jess", "fixed", 2)

    def test_cost_model_fingerprint_covers_all_fields(self):
        base = cost_model_fingerprint(DEFAULT_COSTS)
        tweaked = DEFAULT_COSTS.replace(decay_rate=DEFAULT_COSTS.decay_rate / 2)
        assert cost_model_fingerprint(tweaked) != base


class TestResultCodec:
    def test_round_trip(self, result):
        loaded = result_from_dict(result_to_dict(result))
        assert loaded == result

    def test_round_trip_through_json(self, result):
        # The on-disk path: histogram keys become strings in JSON and
        # must come back as ints.
        loaded = result_from_dict(
            json.loads(json.dumps(result_to_dict(result))))
        assert loaded == result
        assert all(isinstance(k, int) for k in loaded.depth_histogram)


class TestCellCache:
    KEY = ("jess", "cins", 1)
    FP = "ab" * 32

    def test_store_then_load(self, tmp_path, result):
        cache = CellCache(str(tmp_path / "cells"))
        assert not cache.has(self.FP)
        assert cache.load(self.FP) is None
        path = cache.store(self.FP, self.KEY, result)
        assert cache.has(self.FP)
        assert os.path.exists(path)
        assert cache.load(self.FP) == result

    def test_corrupt_entry_warns_and_misses(self, tmp_path, result):
        cache = CellCache(str(tmp_path / "cells"))
        path = cache.store(self.FP, self.KEY, result)
        with open(path, "w") as handle:
            handle.write("{truncated")
        with pytest.warns(RuntimeWarning, match="rerunning that cell"):
            assert cache.load(self.FP) is None

    def test_renamed_entry_rejected(self, tmp_path, result):
        # An entry copied to a different fingerprint's slot (or a cache
        # dir edited by hand) must not satisfy the wrong cell.
        cache = CellCache(str(tmp_path / "cells"))
        path = cache.store(self.FP, self.KEY, result)
        other = "cd" * 32
        os.rename(path, cache.path_for(other))
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert cache.load(other) is None

    def test_store_leaves_no_temp_files(self, tmp_path, result):
        cache = CellCache(str(tmp_path / "cells"))
        cache.store(self.FP, self.KEY, result)
        assert [p for p in os.listdir(cache.root)
                if p.endswith(".tmp")] == []

    def test_load_many_returns_only_hits(self, tmp_path, result):
        cache = CellCache(str(tmp_path / "cells"))
        cache.store(self.FP, self.KEY, result)
        wanted = {self.KEY: self.FP, ("db", "cins", 1): "ef" * 32}
        assert cache.load_many(wanted) == {self.KEY: result}


class TestCacheRoot:
    def test_json_suffix_swapped_for_cells(self):
        assert cell_cache_root("sweep.json") == "sweep.cells"
        assert cell_cache_root("benchmarks/.sweep_cache.json") == \
            "benchmarks/.sweep_cache.cells"

    def test_other_paths_get_suffix_appended(self):
        assert cell_cache_root("results/sweep") == "results/sweep.cells"
