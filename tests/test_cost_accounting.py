"""Unit tests for the per-component cycle accounting (Figure 6 substrate)."""

import pytest

from repro.aos.cost_accounting import (AI_ORGANIZER, ALL_COMPONENTS, APP,
                                       AOS_COMPONENTS, COMPILATION,
                                       CONTROLLER, CostAccounting,
                                       DECAY_ORGANIZER, LISTENERS,
                                       METHOD_ORGANIZER)


class TestComponents:
    def test_all_components_cover_app_plus_aos(self):
        assert set(ALL_COMPONENTS) == {APP} | set(AOS_COMPONENTS)

    def test_figure6_components_are_aos(self):
        for component in (LISTENERS, COMPILATION, DECAY_ORGANIZER,
                          AI_ORGANIZER, METHOD_ORGANIZER, CONTROLLER):
            assert component in AOS_COMPONENTS


class TestAccounting:
    def test_charges_accumulate(self):
        acct = CostAccounting()
        acct.charge(APP, 100.0)
        acct.charge(APP, 50.0)
        acct.charge(COMPILATION, 25.0)
        assert acct.cycles[APP] == 150.0
        assert acct.total == 175.0

    def test_fractions_sum_to_one(self):
        acct = CostAccounting()
        acct.charge(APP, 80.0)
        acct.charge(LISTENERS, 15.0)
        acct.charge(CONTROLLER, 5.0)
        fractions = acct.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[APP] == pytest.approx(0.8)

    def test_empty_fractions_zero(self):
        fractions = CostAccounting().fractions()
        assert all(v == 0.0 for v in fractions.values())

    def test_aos_fraction(self):
        acct = CostAccounting()
        acct.charge(APP, 90.0)
        acct.charge(COMPILATION, 10.0)
        assert acct.aos_fraction() == pytest.approx(0.1)

    def test_aos_fraction_empty(self):
        assert CostAccounting().aos_fraction() == 0.0

    def test_snapshot_is_a_copy(self):
        acct = CostAccounting()
        acct.charge(APP, 10.0)
        snap = acct.snapshot()
        snap[APP] = 999.0
        assert acct.cycles[APP] == 10.0
