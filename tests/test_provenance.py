"""Unit tests for the decision-provenance layer (records, recorder,
metrics, explain, diff)."""

import pytest

from repro.provenance import (CompilationRecord, DecisionRecord, EventKind,
                              EventRecord, NULL_PROVENANCE,
                              ProvenanceRecorder, ReasonCode, SCHEMA,
                              derived_metrics, diff_decisions,
                              dilution_ratio, dump_jsonl, explain_method,
                              final_decisions, fold_into_telemetry,
                              guard_elimination_count, parse_jsonl,
                              read_decision_log, record_from_dict,
                              record_to_dict, refusal_histogram,
                              render_diff, split_records,
                              write_decision_log)
from repro.provenance.diff import FLIP_REASON, FLIP_TARGETS, FLIP_VERDICT


def decision(caller="C.root", site=5, verdict="direct", reason="tiny",
             context=(("C.root", 5),), targets=("C.tiny",), **extra):
    defaults = dict(clock=100.0, root="C.root", version=1, caller=caller,
                    site=site, depth=0, site_kind="static",
                    selector=targets[0] if targets else "m",
                    verdict=verdict, reason=reason, context=tuple(context),
                    targets=tuple(targets))
    defaults.update(extra)
    return DecisionRecord(**defaults)


class TestRecords:
    def test_decision_roundtrip(self):
        record = decision(verdict="guarded", reason="profile",
                          coverage=0.9, guard_kind="class_test",
                          profile_weight=12.0, size_class="medium",
                          size_estimate=30, current_size=64)
        assert record_from_dict(record_to_dict(record)) == record

    def test_compilation_and_event_roundtrip(self):
        compilation = CompilationRecord(
            clock=5.0, method="C.m", version=2, reason="hot",
            rules_fingerprint=77, inlined_bytecodes=40, code_bytes=240,
            compile_cycles=4000.0, decisions=6)
        event = EventRecord(clock=6.0, kind="plan", subject="C.m",
                            detail={"reason": "hot", "version": 2})
        assert record_from_dict(record_to_dict(compilation)) == compilation
        assert record_from_dict(record_to_dict(event)) == event

    def test_unknown_type_tag_rejected(self):
        with pytest.raises(ValueError):
            record_from_dict({"t": "mystery"})

    def test_forward_compat_ignores_unknown_fields(self):
        payload = record_to_dict(decision())
        payload["field_from_the_future"] = 42
        assert record_from_dict(payload) == decision()

    def test_jsonl_roundtrip_with_header(self):
        records = [decision(), EventRecord(1.0, "osr", "C.m", {})]
        text = dump_jsonl(records, {"label": "x", "total_cycles": 10.0})
        meta, parsed = parse_jsonl(text)
        assert meta["schema"] == SCHEMA
        assert meta["label"] == "x"
        assert parsed == records

    def test_schema_mismatch_rejected(self):
        text = dump_jsonl([], {}).replace(SCHEMA, "repro.provenance/v999")
        with pytest.raises(ValueError, match="schema"):
            parse_jsonl(text)

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_jsonl("")

    def test_write_read_decision_log(self, tmp_path):
        path = str(tmp_path / "sub" / "run.decisions.jsonl")
        records = [decision()]
        count = write_decision_log(path, records, {"label": "r"})
        assert count == 1
        meta, parsed = read_decision_log(path)
        assert meta["label"] == "r"
        assert parsed == records

    def test_final_decisions_keeps_last_per_site(self):
        first = decision(version=1, verdict="refused", reason="no_profile",
                         targets=())
        second = decision(version=2, verdict="direct", reason="medium-hot")
        other = decision(site=9, context=(("C.root", 9),))
        finals = final_decisions([first, second, other])
        assert finals[first.site_key] is second
        assert len(finals) == 2

    def test_split_records_partitions_by_type(self):
        records = [decision(),
                   CompilationRecord(1.0, "C.m", 1, "hot", 0, 0, 0, 0.0, 0),
                   EventRecord(2.0, "osr", "C.m", {})]
        decisions, compilations, events = split_records(records)
        assert [len(decisions), len(compilations), len(events)] == [1, 1, 1]


class TestRecorder:
    def test_decisions_inherit_open_compilation_version(self):
        recorder = ProvenanceRecorder()
        recorder.bind(lambda: 42.0)
        recorder.begin_compilation("C.m", 3, "hot", 99)
        recorder.decision(root="C.m", caller="C.m", site=1, depth=0,
                          site_kind="static", selector="C.t",
                          verdict="direct", reason=ReasonCode.TINY,
                          context=(("C.m", 1),), targets=("C.t",))
        recorder.end_compilation(10, 60, 1000.0)
        [record] = recorder.decisions
        assert record.version == 3
        assert record.clock == 42.0
        assert record.reason == "tiny"
        [compilation] = recorder.compilations
        assert compilation.decisions == 1
        assert compilation.code_bytes == 60

    def test_decision_without_compilation_gets_version_zero(self):
        recorder = ProvenanceRecorder()
        recorder.decision(root="C.m", caller="C.m", site=1, depth=0,
                          site_kind="static", selector="C.t",
                          verdict="refused", reason="depth",
                          context=(("C.m", 1),))
        assert recorder.decisions[0].version == 0

    def test_end_without_begin_is_noop(self):
        recorder = ProvenanceRecorder()
        recorder.end_compilation(0, 0, 0.0)
        assert len(recorder) == 0

    def test_event_normalizes_kind(self):
        recorder = ProvenanceRecorder()
        recorder.event(EventKind.OSR, "C.m", extra=1)
        [event] = recorder.events
        assert event.kind == "osr"
        assert event.detail == {"extra": 1}

    def test_to_jsonl_includes_label(self):
        recorder = ProvenanceRecorder(label="bench/policy")
        meta, _records = parse_jsonl(recorder.to_jsonl({"scale": 0.1}))
        assert meta["label"] == "bench/policy"
        assert meta["scale"] == 0.1

    def test_null_provenance_is_inert(self):
        NULL_PROVENANCE.bind(lambda: 0.0)
        NULL_PROVENANCE.begin_compilation("m", 1, "hot", 0)
        NULL_PROVENANCE.decision(root="m", verdict="direct")
        NULL_PROVENANCE.end_compilation(0, 0, 0.0)
        NULL_PROVENANCE.event("osr", "m", any_detail=True)
        assert NULL_PROVENANCE.enabled is False


class TestMetrics:
    def test_refusal_histogram(self):
        records = [decision(verdict="refused", reason="budget", targets=()),
                   decision(verdict="refused", reason="budget", targets=()),
                   decision(verdict="refused", reason="depth", targets=()),
                   decision(verdict="direct", reason="tiny")]
        assert refusal_histogram(records) == {"budget": 2, "depth": 1}

    def test_guard_elimination_counts_dynamic_direct_only(self):
        records = [decision(site_kind="virtual", verdict="direct"),
                   decision(site_kind="interface", verdict="direct"),
                   decision(site_kind="static", verdict="direct"),
                   decision(site_kind="virtual", verdict="guarded",
                            reason="profile")]
        assert guard_elimination_count(records) == 2

    def test_dilution_ratio(self):
        records = [decision(verdict="guarded", reason="profile",
                            coverage=0.8),
                   decision(verdict="guarded", reason="profile",
                            coverage=1.0),
                   decision(verdict="guarded", reason="profile"),  # no data
                   decision(verdict="direct", coverage=0.1)]  # not guarded
        assert dilution_ratio(records) == pytest.approx(0.1)

    def test_dilution_ratio_empty(self):
        assert dilution_ratio([]) == 0.0

    def test_derived_metrics_and_fold(self):
        records = [decision(site_kind="virtual", verdict="direct"),
                   decision(verdict="refused", reason="space", targets=())]
        metrics = derived_metrics(records)
        assert metrics["provenance.decisions"] == 2.0
        assert metrics["provenance.guard_eliminations"] == 1.0
        assert metrics["provenance.refusals.space"] == 1.0

        class Sink:
            def __init__(self):
                self.gauges = {}

            def gauge(self, name, value):
                self.gauges[name] = value

        sink = Sink()
        fold_into_telemetry(records, sink)
        assert sink.gauges == metrics


class TestExplain:
    def test_unknown_method_lists_available(self):
        records = [CompilationRecord(1.0, "C.m", 1, "hot", 0, 0, 0, 0.0, 0)]
        with pytest.raises(ValueError, match="C.m"):
            explain_method(records, "C.nope")

    def test_renders_tree_indented_by_depth(self):
        records = [
            CompilationRecord(10.0, "C.m", 1, "hot", 0, 40, 240, 1e3, 2),
            decision(root="C.m", caller="C.m", site=1, depth=0,
                     version=1, context=(("C.m", 1),)),
            decision(root="C.m", caller="C.tiny", site=2, depth=1,
                     version=1, verdict="refused", reason="depth",
                     targets=(), context=(("C.tiny", 2), ("C.m", 1))),
        ]
        out = explain_method(records, "C.m")
        assert "compile v1 of C.m [hot]" in out
        assert "  @1 static" in out
        assert "    @2" in out  # depth-1 site indents one level deeper
        assert "refused [depth]" in out

    def test_orphan_version_renders_incomplete(self):
        records = [decision(root="C.m", version=7)]
        out = explain_method(records, "C.m")
        assert "v7 of C.m [incomplete]" in out


class TestDiff:
    def test_flip_classification(self):
        verdict_a = decision(verdict="direct", reason="tiny")
        verdict_b = decision(verdict="refused", reason="space", targets=())
        targets_a = decision(site=6, context=(("C.root", 6),),
                             verdict="guarded", reason="profile",
                             targets=("A.m",))
        targets_b = decision(site=6, context=(("C.root", 6),),
                             verdict="guarded", reason="profile",
                             targets=("A.m", "B.m"))
        reason_a = decision(site=7, context=(("C.root", 7),),
                            verdict="refused", reason="budget", targets=())
        reason_b = decision(site=7, context=(("C.root", 7),),
                            verdict="refused", reason="space", targets=())
        same = decision(site=8, context=(("C.root", 8),))
        only_a = decision(site=9, context=(("C.root", 9),))

        diff = diff_decisions(
            [verdict_a, targets_a, reason_a, same, only_a],
            [verdict_b, targets_b, reason_b, same])
        kinds = {flip.key[1]: flip.kind for flip in diff.flips}
        assert kinds == {5: FLIP_VERDICT, 6: FLIP_TARGETS, 7: FLIP_REASON}
        assert diff.unchanged == 1
        assert [r.site for r in diff.only_a] == [9]
        assert diff.only_b == []
        assert len(diff.verdict_flips) == 1
        assert not diff.is_identical

    def test_identical_runs(self):
        records = [decision()]
        diff = diff_decisions(records, records)
        assert diff.is_identical
        assert "identical" in render_diff(diff)

    def test_code_delta_uses_estimates(self):
        a = decision(verdict="refused", reason="budget", targets=(),
                     size_estimate=18)
        b = decision(verdict="direct", reason="small-hot",
                     size_estimate=18)
        diff = diff_decisions([a], [b])
        assert diff.flips[0].code_delta_bc == 18

    def test_render_includes_run_deltas_and_limit(self):
        flips_a = [decision(site=i, context=(("C.root", i),),
                            verdict="refused", reason="budget", targets=())
                   for i in range(4)]
        flips_b = [decision(site=i, context=(("C.root", i),),
                            verdict="direct", reason="small-hot")
                   for i in range(4)]
        diff = diff_decisions(
            flips_a, flips_b,
            meta_a={"label": "A", "total_cycles": 100.0,
                    "guard_tests": 5, "guard_misses": 1},
            meta_b={"label": "B", "total_cycles": 90.0,
                    "guard_tests": 0, "guard_misses": 0})
        out = render_diff(diff, limit=2)
        assert "total cycles" in out and "-10" in out
        assert "and 2 more" in out

    def test_uses_final_decision_per_site(self):
        early = decision(version=1, verdict="refused", reason="no_profile",
                         targets=())
        late = decision(version=2, verdict="direct", reason="medium-hot")
        diff = diff_decisions([early, late], [late])
        assert diff.is_identical
