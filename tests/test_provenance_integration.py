"""End-to-end tests for decision provenance: cycle identity, real
cross-policy diffs, sweep decision-log persistence, and runtime events.

These exercise the ISSUE acceptance criteria directly:

* recording provenance must not perturb the simulation by a single cycle;
* diffing cins against fixed:4 on ``db`` must surface verdict flips with
  reason codes.
"""

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.runner import (decision_log_meta, load_or_run_sweep,
                                      run_single)
from repro.provenance import (ProvenanceRecorder, diff_decisions,
                              explain_method, final_decisions, render_diff,
                              split_records)

SCALE = 0.05


def record_run(benchmark, family, depth, scale=SCALE, phase=0.0):
    recorder = ProvenanceRecorder(label=f"{benchmark}/{family}")
    result = run_single(benchmark, family, depth, phase=phase, scale=scale,
                        provenance=recorder)
    return result, recorder


class TestCycleIdentity:
    def test_recorded_run_is_bit_identical(self):
        plain = run_single("db", "cins", 4, scale=SCALE)
        recorded, recorder = record_run("db", "cins", 4)
        assert recorded.total_cycles == plain.total_cycles
        assert recorded.opt_code_bytes == plain.opt_code_bytes
        assert recorded.live_opt_code_bytes == plain.live_opt_code_bytes
        assert recorded.guard_tests == plain.guard_tests
        assert recorded.guard_misses == plain.guard_misses
        assert recorded.opt_compilations == plain.opt_compilations
        assert len(recorder) > 0  # the recorder did capture the run


class TestRecordedRun:
    @pytest.fixture(scope="class")
    def cins_run(self):
        return record_run("db", "cins", 4)

    def test_every_compilation_is_bracketed(self, cins_run):
        result, recorder = cins_run
        decisions, compilations, _events = split_records(recorder.records)
        assert len(compilations) == result.opt_compilations
        assert decisions  # compilations contained inlining decisions
        versions = {c.version for c in compilations}
        assert {d.version for d in decisions} <= versions

    def test_decision_clocks_are_monotone(self, cins_run):
        _result, recorder = cins_run
        clocks = [r.clock for r in recorder.records]
        assert clocks == sorted(clocks)

    def test_plan_events_emitted(self, cins_run):
        _result, recorder = cins_run
        kinds = {e.kind for e in recorder.events}
        assert "plan" in kinds

    def test_explain_renders_some_compiled_method(self, cins_run):
        _result, recorder = cins_run
        root = recorder.compilations[0].method
        out = explain_method(recorder.records, root)
        assert f"of {root}" in out
        assert "@" in out  # at least one call-site line

    def test_telemetry_gauges_folded(self):
        from repro.telemetry.recorder import TelemetryRecorder
        telemetry = TelemetryRecorder()
        recorder = ProvenanceRecorder()
        run_single("db", "cins", 4, scale=SCALE, telemetry=telemetry,
                   provenance=recorder)
        gauges = set(telemetry.gauges)
        assert "provenance.decisions" in gauges
        assert "provenance.dilution_ratio" in gauges


class TestCrossPolicyDiff:
    def test_cins_vs_fixed4_reports_verdict_flips(self):
        result_a, rec_a = record_run("db", "fixed", 4)
        result_b, rec_b = record_run("db", "cins", 4)
        meta_a = decision_log_meta("db", "fixed", 4, 0.0, SCALE, result_a)
        meta_b = decision_log_meta("db", "cins", 4, 0.0, SCALE, result_b)
        diff = diff_decisions(rec_a.records, rec_b.records,
                              meta_a=meta_a, meta_b=meta_b)
        # Acceptance criterion: at least one verdict flip, with reason
        # codes on both sides.
        assert len(diff.verdict_flips) >= 1
        for flip in diff.verdict_flips:
            assert flip.a.reason and flip.b.reason
        out = render_diff(diff)
        assert "flipped" in out
        assert "total cycles" in out

    def test_same_policy_diff_is_identical(self):
        _result, rec_a = record_run("db", "fixed", 2)
        _result, rec_b = record_run("db", "fixed", 2)
        diff = diff_decisions(rec_a.records, rec_b.records)
        assert diff.is_identical


class TestSweepDecisionLogs:
    def test_logs_persisted_and_resumed(self, tmp_path):
        cache = str(tmp_path / "sweep.json")
        config = SweepConfig(benchmarks=("db",), families=("fixed",),
                             depths=(2,), phases=(0.0,), scale=SCALE,
                             decision_logs=True)
        results = load_or_run_sweep(cache, config)
        assert results.cells

        logs = list(tmp_path.glob("sweep.cells/*.decisions.jsonl"))
        assert len(logs) == len(results.cells)

        # A second load must reuse the cache, and the stored log must
        # reconstruct the same final decisions as a fresh recorded run.
        again = load_or_run_sweep(cache, config)
        assert set(again.cells) == set(results.cells)

        from repro.provenance import read_decision_log
        by_cell = {}
        for log in logs:
            meta, records = read_decision_log(str(log))
            assert meta["benchmark"] == "db"
            by_cell[(meta["family"], meta["depth"])] = records
        assert ("fixed", 2) in by_cell
        _result, fresh = record_run("db", "fixed", 2)
        assert (final_decisions(by_cell[("fixed", 2)]).keys()
                == final_decisions(fresh.records).keys())
