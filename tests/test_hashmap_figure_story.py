"""End-to-end assertions of the paper's Figure 1/2 narrative.

The prose of Section 2 makes concrete, testable claims about the HashMap
example; this module verifies each of them against the running system
rather than against the profile data alone.
"""

import pytest

from repro.aos.runtime import AdaptiveRuntime
from repro.compiler.compiled_method import GUARDED
from repro.policies import make_policy
from repro.workloads.hashmap_example import build


@pytest.fixture(scope="module")
def runs():
    out = {}
    for label, family, depth in (("cins", "cins", 1),
                                 ("trace", "fixed", 2)):
        built = build(iterations=5000)
        runtime = AdaptiveRuntime(built.program, make_policy(family, depth))
        result = runtime.run()
        out[label] = (built, runtime, result)
    return out


def _hash_decisions(built, runtime):
    """All inline decisions installed anywhere for the hashCode site."""
    decisions = []
    for compiled in runtime.code_cache.opt_methods():
        for node in compiled.root.walk():
            decision = node.decisions.get(built.sites.hash_site)
            if decision is not None:
                decisions.append((compiled.method.id, node.method.id,
                                  decision))
    return decisions


class TestPaperNarrative:
    def test_cins_inlines_both_or_neither(self, runs):
        """Paper: cins 'will either inline both versions of hashCode at
        each call site, or inline neither'."""
        built, runtime, _ = runs["cins"]
        for _root, _node, decision in _hash_decisions(built, runtime):
            targets = set(decision.targets())
            assert targets in (
                {"MyKey.hashCode", "Object.hashCode"},
            ), f"cins produced a single-target guess: {targets}"

    def test_trace_profiling_specializes_copies(self, runs):
        """Paper: trace profiling inlines 'the correct version at each
        call site' -- every inlined copy of get is single-target."""
        built, runtime, _ = runs["trace"]
        specialized = [d for _r, node_id, d
                       in _hash_decisions(built, runtime)
                       if node_id == "HashMap.get"]
        single_target = [d for d in specialized if len(d.options) == 1]
        # At least some copies specialize (copies reached through runTest
        # contexts); none of the specialized ones need a second guard.
        assert specialized, "hashCode never inlined under trace profiling"
        assert single_target, "no copy of get was context-specialized"

    def test_equals_benefits_the_same_way(self, runs):
        """Paper: 'The call to equals within HashMap.get also benefits
        from context sensitivity in exactly the same way.'"""
        built, runtime, _ = runs["trace"]
        for compiled in runtime.code_cache.opt_methods():
            for node in compiled.root.walk():
                decision = node.decisions.get(built.sites.equals_site)
                if decision is not None and decision.kind == GUARDED:
                    assert len(decision.options) <= 2

    def test_code_space_and_guards_improve(self, runs):
        _b1, _r1, cins = runs["cins"]
        _b2, _r2, trace = runs["trace"]
        assert trace.live_opt_code_bytes < cins.live_opt_code_bytes
        assert trace.guard_tests < cins.guard_tests

    def test_both_runs_compute_same_result(self, runs):
        _b1, _r1, cins = runs["cins"]
        _b2, _r2, trace = runs["trace"]
        assert cins.return_value == trace.return_value
