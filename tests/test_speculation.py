"""End-to-end tests for speculation-driven guard elision.

The contract under test, layer by layer: the oracle marks exhaustive
last guards on its decisions, the compiler turns the marks into elided
guard options, the machine enters elided options at zero guard cost,
the elision replay proves no elided guard would ever have failed, and
set-valued CHA dependencies invalidate the compiled code exactly when a
class load escapes the proven-exhaustive target set.
"""

import pytest

from repro.analysis.soundness import check_elision_soundness
from repro.aos.runtime import AdaptiveRuntime
from repro.compiler.compiled_method import (ELIDE_EXHAUSTIVE, GUARDED)
from repro.compiler.opt_compiler import OptCompiler
from repro.compiler.oracle import Decision
from repro.jvm.costs import DEFAULT_COSTS
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (Arg, Const, Local, Return, VirtualCall,
                               Work)
from repro.policies import make_policy
from repro.provenance import ProvenanceRecorder
from repro.provenance.diff import diff_decisions
from repro.provenance.reasons import GUARD_CLASS_TEST
from repro.workloads.builder import ProgramBuilder
from repro.workloads.spec import build_benchmark


def _run(name, scale, speculation, provenance=None):
    built = build_benchmark(name, scale=scale)
    costs = DEFAULT_COSTS.replace(speculation_enabled=speculation)
    kwargs = {"provenance": provenance} if provenance is not None else {}
    runtime = AdaptiveRuntime(built.program,
                              make_policy("cins", costs=costs),
                              costs=costs, **kwargs)
    return runtime.run()


class TestGuardCycleReduction:
    def test_mtrt_guard_tests_drop_with_elision(self):
        off = _run("mtrt", 0.1, speculation=False)
        on = _run("mtrt", 0.1, speculation=True)
        assert off.elided_entries == 0
        assert on.elided_entries > 0
        assert on.guard_tests < off.guard_tests
        # Every elided entry saved exactly one guard-test charge at its
        # site; the aggregate drop reflects those zero-cost entries.
        assert off.guard_tests - on.guard_tests > 100

    def test_db_elision_soundly_refused(self):
        # db's guarded site keeps a live fallthrough (more loaded targets
        # than guarded options), so the exhaustive elision must refuse
        # and the guard-cycle profile must be untouched.
        off = _run("db", 0.3, speculation=False)
        on = _run("db", 0.3, speculation=True)
        assert on.elided_entries == 0
        assert on.guard_tests == off.guard_tests
        assert on.guard_misses == off.guard_misses
        assert on.total_cycles == off.total_cycles


class TestElisionReplay:
    @pytest.mark.parametrize("name,scale", [("jess", 0.3), ("mtrt", 0.1),
                                            ("compress", 0.1), ("db", 0.3)])
    def test_no_elided_guard_would_have_failed(self, name, scale):
        report = check_elision_soundness(
            build_benchmark(name, scale=scale).program)
        assert report.ok, report.render()
        assert report.guard_tests >= 0

    def test_replay_forces_speculation_on(self):
        # The checker runs with speculation forced on even from default
        # costs, so it actually exercises elided entries where they fire.
        report = check_elision_soundness(
            build_benchmark("mtrt", scale=0.1).program)
        assert report.elided_entries > 0
        assert report.ok


class TestReasonOnlyContract:
    def test_hashmap_decisions_identical_with_speculation(self):
        """On the golden workload the pass changes no decision at all:
        no verdict flips, no target changes, not even a reason change."""
        from repro.workloads.hashmap_example import build as build_hashmap

        def decisions(speculation):
            built = build_hashmap(iterations=4000)
            costs = DEFAULT_COSTS.replace(speculation_enabled=speculation)
            rec = ProvenanceRecorder()
            AdaptiveRuntime(built.program,
                            make_policy("fixed", 2, costs=costs),
                            costs=costs, provenance=rec).run()
            return rec.records

        diff = diff_decisions(decisions(False), decisions(True))
        assert diff.is_identical

    def test_db_decisions_identical_with_speculation(self):
        rec_off, rec_on = ProvenanceRecorder(), ProvenanceRecorder()
        _run("db", 0.3, speculation=False, provenance=rec_off)
        _run("db", 0.3, speculation=True, provenance=rec_on)
        diff = diff_decisions(rec_off.records, rec_on.records)
        assert not diff.verdict_flips
        assert diff.is_identical


class _StubOracle:
    """Guards the one virtual site with an exhaustive last test."""

    def __init__(self, targets):
        self._targets = targets

    def decide(self, stmt, comp_context, depth, current_size, root):
        if stmt.kind != VirtualCall.kind:
            return Decision.no("no_profile")
        return Decision.guarded_inline(self._targets, reason="profile",
                                       guard_kind=GUARD_CLASS_TEST,
                                       guard_elided_last=True)


class TestCompilerMarksLastOption:
    def _program(self):
        b = ProgramBuilder("exh")
        b.cls("Shape")
        b.cls("Circle", superclass="Shape")
        b.cls("Square", superclass="Shape")
        b.cls("App")
        b.method("Shape", "area", [Work(4), Return(Const(0))], params=1)
        b.method("Circle", "area", [Work(4), Return(Const(1))], params=1)
        b.method("Square", "area", [Work(4), Return(Const(2))], params=1)
        b.static_method("App", "use", [
            VirtualCall(0, "area", Arg(0), dst=0), Return(Local(0))
        ], params=1, locals_=2)
        b.static_method("App", "main", [Return(Const(0))])
        b.entry("App.main")
        return b.build()

    def test_only_last_option_elided_exhaustive(self):
        program = self._program()
        targets = [program.method("Circle.area"),
                   program.method("Square.area")]
        compiler = OptCompiler(program, ClassHierarchy(program),
                               DEFAULT_COSTS)
        compiled = compiler.compile(program.method("App.use"),
                                    _StubOracle(targets))
        decision = compiled.root.decisions[0]
        assert decision.kind == GUARDED
        first, last = decision.options
        assert first.elided is None
        assert last.elided == ELIDE_EXHAUSTIVE
        # Only the first option's test is compiled in; the last is gone.
        assert compiled.guard_count() == 1
        assert compiled.elided_guard_count() == 1
        assert compiled.elisions() == [
            ("App.use", 0, ELIDE_EXHAUSTIVE, "Square.area")]


def shapes_program():
    b = ProgramBuilder("setdeps")
    b.cls("Shape")
    b.cls("Circle", superclass="Shape")
    b.cls("Square", superclass="Shape")
    b.cls("Exotic", superclass="Shape")
    b.cls("App")
    b.method("Shape", "area", [Work(6), Return(Const(0))], params=1)
    b.method("Circle", "area", [Work(6), Return(Const(1))], params=1)
    b.method("Square", "area", [Work(6), Return(Const(2))], params=1)
    b.method("Exotic", "area", [Work(6), Return(Const(3))], params=1)
    b.static_method("App", "use", [
        VirtualCall(0, "area", Arg(0), dst=0), Return(Local(0))
    ], params=1, locals_=2)
    b.static_method("App", "main", [Return(Const(0))])
    b.entry("App.main")
    return b.build()


class TestSetValuedDependencies:
    ROOT = "App.use"

    def _runtime(self):
        runtime = AdaptiveRuntime(shapes_program(), make_policy("cins", 1))
        runtime.hierarchy.mark_loaded("Circle")
        runtime.hierarchy.mark_loaded("Square")
        runtime.database.record_cha_dependency(
            self.ROOT, "area", frozenset({"Circle.area", "Square.area"}))
        from repro.compiler.compiled_method import CompiledMethod, InlineNode
        root = runtime.program.method(self.ROOT)
        runtime.code_cache.install(CompiledMethod(
            InlineNode(root), inlined_bytecodes=root.bytecodes,
            code_bytes=64, compile_cycles=100, version=1))
        return runtime

    def test_load_inside_set_does_not_invalidate(self):
        runtime = self._runtime()
        # Shape itself resolves to Shape.area -- outside the set -- so
        # use a reload-style no-op: loading nothing new keeps the code.
        runtime._on_class_load("Square")
        assert runtime.database.invalidation_count == 0
        assert runtime.code_cache.opt_version(self.ROOT) is not None

    def test_load_escaping_set_invalidates(self):
        runtime = self._runtime()
        runtime.hierarchy.mark_loaded("Exotic")
        runtime._on_class_load("Exotic")
        assert runtime.database.invalidation_count == 1
        assert runtime.code_cache.opt_version(self.ROOT) is None
        assert self.ROOT not in runtime.database.cha_dependencies()

    def test_rerecording_intersects_allowed_sets(self):
        from repro.aos.database import AOSDatabase
        db = AOSDatabase()
        db.record_cha_dependency("R", "area",
                                 frozenset({"Circle.area", "Square.area"}))
        db.record_cha_dependency("R", "area", "Circle.area")
        # Both assumptions must keep holding: the intersection survives,
        # and singletons stay plain strings.
        assert db.cha_dependencies()["R"]["area"] == "Circle.area"

    def test_singleton_dependency_keeps_legacy_semantics(self):
        runtime = AdaptiveRuntime(shapes_program(), make_policy("cins", 1))
        runtime.hierarchy.mark_loaded("Circle")
        runtime.database.record_cha_dependency(self.ROOT, "area",
                                               "Circle.area")
        deps = runtime.database.cha_dependencies()[self.ROOT]
        assert deps["area"] == "Circle.area"
