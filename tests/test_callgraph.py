"""Unit tests for the static call-graph builder (CHA/RTA)."""

import pytest

from conftest import build_diamond_program
from repro.analysis.callgraph import (CHA, DEFAULT_LOOP_TRIPS, LOOP_TRIP_CAP,
                                      MIN_PROPAGATED_WEIGHT, RTA,
                                      build_call_graph,
                                      method_site_multipliers, site_kind)
from repro.jvm.program import (Const, If, Local, Loop, New, Return,
                               StaticCall, VirtualCall, Work)
from repro.workloads.builder import ProgramBuilder


def build_partial_alloc_program():
    """Three implementations of ``ping``, but only class A is allocated.

    CHA must report all three targets at the dispatch site; RTA must
    narrow it to ``A.ping``.  Class ``C.dead`` is never called.
    """
    b = ProgramBuilder("partial")
    b.cls("Base")
    b.cls("A", superclass="Base")
    b.cls("B", superclass="Base")
    b.cls("C")
    b.cls("Main")
    b.method("A", "ping", [Work(3), Return(Const(1))], params=1)
    b.method("B", "ping", [Work(3), Return(Const(2))], params=1)
    b.method("Base", "ping", [Work(3), Return(Const(0))], params=1)
    b.method("C", "dead", [Return(Const(9))], params=0, static=True)

    ping_site = b.site()
    b.static_method("Main", "main", [
        New(0, "A"),
        Loop(Const(4), 1, [
            VirtualCall(ping_site, "ping", Local(0), dst=2),
        ]),
        Return(Local(2)),
    ], locals_=4)
    b.entry("Main.main")
    return b.build(), ping_site


class TestPrecision:
    def test_cha_sees_every_implementation(self):
        program, site = build_partial_alloc_program()
        graph = build_call_graph(program, precision=CHA)
        assert graph.targets(site) == {"A.ping", "B.ping", "Base.ping"}
        assert not graph.is_monomorphic(site)

    def test_rta_narrows_to_instantiated_classes(self):
        program, site = build_partial_alloc_program()
        graph = build_call_graph(program, precision=RTA)
        assert graph.targets(site) == {"A.ping"}
        assert graph.is_monomorphic(site)
        assert graph.instantiated == {"A"}

    def test_rta_subset_of_cha_per_site(self):
        program, _site = build_partial_alloc_program()
        cha = build_call_graph(program, precision=CHA)
        rta = build_call_graph(program, precision=RTA)
        for site in cha.sites:
            assert rta.targets(site) <= cha.targets(site)

    def test_unknown_precision_rejected(self):
        program, _site = build_partial_alloc_program()
        with pytest.raises(ValueError):
            build_call_graph(program, precision="magic")

    def test_unknown_site_has_empty_targets(self):
        program, _site = build_partial_alloc_program()
        graph = build_call_graph(program)
        assert graph.targets(99999) == frozenset()


class TestReachability:
    def test_dead_method_reported(self):
        program, _site = build_partial_alloc_program()
        graph = build_call_graph(program, precision=RTA)
        assert "C.dead" in graph.dead_methods()
        assert "Main.main" in graph.reachable
        assert "A.ping" in graph.reachable

    def test_rta_excludes_unallocated_overrides_from_reachable(self):
        program, _site = build_partial_alloc_program()
        rta = build_call_graph(program, precision=RTA)
        cha = build_call_graph(program, precision=CHA)
        assert "B.ping" not in rta.reachable
        assert "B.ping" in cha.reachable

    def test_diamond_reachability_by_precision(self):
        program, _sites = build_diamond_program()
        # A and B both override ping and both are allocated, so under RTA
        # the Base.ping default body is provably never executed.
        rta = build_call_graph(program, precision=RTA)
        assert rta.dead_methods() == ["Base.ping"]
        cha = build_call_graph(program, precision=CHA)
        assert cha.dead_methods() == []


class TestFrequencies:
    def test_loop_multiplies_site_frequency(self):
        program, sites = build_diamond_program(iterations=10)
        graph = build_call_graph(program)
        # Main.run is called from inside a 10-trip loop; each dispatch
        # inside run inherits that frequency.
        loop_freq = graph.sites[sites["loop"]].frequency
        ping_freq = graph.sites[sites["ping_a"]].frequency
        assert loop_freq == pytest.approx(10.0)
        assert ping_freq == pytest.approx(loop_freq)

    def test_constant_trips_clamped(self):
        b = ProgramBuilder("clamp")
        b.cls("Main")
        site = b.site()
        b.method("Main", "h", [Work(1), Return(Const(0))], params=0,
                 static=True)
        b.static_method("Main", "main", [
            Loop(Const(100_000), 0, [StaticCall(site, "Main.h", dst=1)]),
            Return(Const(0)),
        ], locals_=4)
        b.entry("Main.main")
        graph = build_call_graph(b.build())
        assert graph.sites[site].frequency == pytest.approx(LOOP_TRIP_CAP)

    def test_non_constant_trips_use_default(self):
        b = ProgramBuilder("dynloop")
        b.cls("Main")
        site = b.site()
        b.method("Main", "h", [Work(1), Return(Const(0))], params=0,
                 static=True)
        b.static_method("Main", "main", [
            Loop(Local(0), 1, [StaticCall(site, "Main.h", dst=2)]),
            Return(Const(0)),
        ], locals_=4)
        b.entry("Main.main")
        graph = build_call_graph(b.build())
        assert graph.sites[site].frequency == pytest.approx(
            DEFAULT_LOOP_TRIPS)

    def test_virtual_frequency_split_over_targets(self):
        program, site = build_partial_alloc_program()
        cha = build_call_graph(program, precision=CHA)
        # 4 loop trips split evenly over 3 CHA targets.
        assert cha.method_frequency["A.ping"] == pytest.approx(4.0 / 3.0)
        rta = build_call_graph(program, precision=RTA)
        assert rta.method_frequency["A.ping"] == pytest.approx(4.0)

    def test_site_weight_normalized(self):
        program, _sites = build_diamond_program()
        graph = build_call_graph(program)
        weights = [graph.site_weight(s) for s in graph.sites]
        assert sum(weights) == pytest.approx(1.0)
        assert all(w >= 0.0 for w in weights)


def build_mutual_recursion_program(trips=1_000_000):
    """``M.a`` and ``M.b`` call each other; main drives ``a`` in a loop."""
    b = ProgramBuilder("mutual")
    b.cls("M")
    fa, fb, entry_site = b.site(), b.site(), b.site()
    b.method("M", "a", [Work(1), StaticCall(fa, "M.b", dst=0),
                        Return(Local(0))], params=0, static=True, locals_=2)
    b.method("M", "b", [Work(1), StaticCall(fb, "M.a", dst=0),
                        Return(Local(0))], params=0, static=True, locals_=2)
    b.static_method("M", "main", [
        Loop(Const(trips), 0, [StaticCall(entry_site, "M.a", dst=1)]),
        Return(Const(0)),
    ], locals_=4)
    b.entry("M.main")
    return b.build(), {"a": fa, "b": fb, "entry": entry_site}


class TestTermination:
    """Regression tests: the frequency walk must terminate on recursive
    call graphs and respect its weight cutoff and loop clamp."""

    def test_mutual_recursion_terminates_with_clamped_weight(self):
        program, sites = build_mutual_recursion_program()
        graph = build_call_graph(program)
        # The million-trip loop clamps to LOOP_TRIP_CAP; the cyclic edges
        # contribute nothing once a method is on the walk stack, so each
        # method sees exactly the loop's clamped frequency.
        assert graph.method_frequency["M.a"] == pytest.approx(LOOP_TRIP_CAP)
        assert graph.method_frequency["M.b"] == pytest.approx(LOOP_TRIP_CAP)
        assert graph.sites[sites["entry"]].frequency == \
            pytest.approx(LOOP_TRIP_CAP)

    def test_mutual_recursion_all_reachable(self):
        program, _sites = build_mutual_recursion_program()
        graph = build_call_graph(program, precision=RTA)
        assert {"M.a", "M.b", "M.main"} <= graph.reachable
        assert graph.dead_methods() == []

    def test_min_weight_cutoff_stops_deep_cold_chains(self):
        # 40 nested If levels halve the weight at each step; past
        # 0.5**i < MIN_PROPAGATED_WEIGHT the walk must stop contributing
        # even though the tail methods stay statically reachable.
        n = 40
        b = ProgramBuilder("deepchain")
        b.cls("M")
        sites = [b.site() for _ in range(n)]
        for i in range(n):
            b.method("M", f"f{i}", [
                If(Const(1), [StaticCall(sites[i], f"M.f{i + 1}", dst=0)]),
                Return(Const(0)),
            ], params=0, static=True, locals_=2)
        b.method("M", f"f{n}", [Work(1), Return(Const(0))],
                 params=0, static=True)
        main_site = b.site()
        b.static_method("M", "main", [
            StaticCall(main_site, "M.f0", dst=0),
            Return(Local(0)),
        ], locals_=2)
        b.entry("M.main")
        graph = build_call_graph(b.build())

        assert graph.method_frequency["M.f10"] == pytest.approx(0.5 ** 10)
        # 0.5**29 is still above the cutoff, 0.5**30 is below it.
        assert 0.5 ** 29 >= MIN_PROPAGATED_WEIGHT > 0.5 ** 30
        assert "M.f29" in graph.method_frequency
        assert "M.f30" not in graph.method_frequency
        # Reachability is weight-blind: the cold tail is still live code.
        assert f"M.f{n}" in graph.reachable


class TestPublicHelpers:
    """The helpers the k-CFA builder shares with the flat builder."""

    def test_method_site_multipliers_matches_loop_structure(self):
        program, site = build_partial_alloc_program()
        mults = method_site_multipliers(program.method("Main.main"))
        assert mults == {site: pytest.approx(4.0)}

    def test_site_kind_classifies_statements(self):
        program, site = build_partial_alloc_program()
        main = program.method("Main.main")
        kinds = {}
        from repro.compiler.opt_compiler import iter_call_sites
        for stmt in iter_call_sites(main.body):
            kinds[stmt.site] = site_kind(stmt)
        assert kinds[site] == ("virtual", "ping")


class TestSummaries:
    def test_histogram_and_summary_consistent(self):
        program, _site = build_partial_alloc_program()
        graph = build_call_graph(program, precision=CHA)
        histogram = graph.monomorphism_histogram()
        assert histogram == {3: 1}
        summary = graph.summary()
        assert summary["dispatched_sites"] == 1
        assert summary["polymorphic_sites"] == 1
        assert summary["monomorphic_sites"] == 0
        assert summary["monomorphism_histogram"] == {"3": 1}

    @pytest.mark.parametrize("name", ["compress", "jess", "mtrt"])
    def test_rta_subset_of_cha_on_benchmarks(self, name):
        from repro.workloads.spec import build_benchmark
        program = build_benchmark(name, scale=0.05).program
        cha = build_call_graph(program, precision=CHA)
        rta = build_call_graph(program, precision=RTA)
        assert set(rta.sites) <= set(cha.sites)
        for site in rta.sites:
            assert rta.targets(site) <= cha.targets(site)
        assert rta.reachable <= cha.reachable
