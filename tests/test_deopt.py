"""Deopt planner strategy rules, runtime gating, and OSR soundness replay.

The planner mirrors the speculation pass's contract: opt-in via the
cost model, injected (never imported) below the analysis layer, and
byte-identical golden decision logs when disabled.
"""

import os

import pytest

from repro.analysis.deopt import (DeoptPlanner, STRATEGY_GUARD,
                                  STRATEGY_GUARD_FREE, STRATEGY_OSR_EXIT)
from repro.analysis.soundness import check_osr_soundness
from repro.aos.runtime import AdaptiveRuntime
from repro.jvm.costs import DEFAULT_COSTS, DEOPT_STRATEGIES
from repro.jvm.errors import ConfigError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (Arg, Const, Local, New, Return, StaticCall,
                               VirtualCall, Work)
from repro.policies import make_policy
from repro.provenance import ProvenanceRecorder
from repro.workloads.builder import ProgramBuilder
from repro.workloads.hashmap_example import build as build_hashmap
from repro.workloads.spec import build_benchmark

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "hashmap_fixed2.decisions.jsonl")

PLANNED = DEFAULT_COSTS.replace(deopt_planning_enabled=True,
                                deopt_strategy="planned")


def shapes_program():
    """Shape/Circle/Square/Exotic with App.use (preexistent receiver)
    and App.use_fresh (freshly allocated receiver)."""
    b = ProgramBuilder("deoptshapes")
    b.cls("Shape")
    b.cls("Circle", superclass="Shape")
    b.cls("Square", superclass="Shape")
    b.cls("Exotic", superclass="Shape")
    b.cls("App")
    b.method("Shape", "area", [Work(6), Return(Const(0))], params=1)
    b.method("Circle", "area", [Work(6), Return(Const(1))], params=1)
    b.method("Square", "area", [Work(6), Return(Const(2))], params=1)
    b.method("Exotic", "area", [Work(6), Return(Const(3))], params=1)
    b.static_method("App", "use", [
        VirtualCall(0, "area", Arg(0), dst=0), Return(Local(0))
    ], params=1, locals_=2)
    b.static_method("App", "use_fresh", [
        New(1, "Circle"),
        VirtualCall(1, "area", Local(1), dst=0), Return(Local(0))
    ], params=0, locals_=3)
    b.static_method("App", "main", [
        New(0, "Circle"), New(1, "Square"), New(2, "Exotic"),
        Return(Const(0)),
    ], locals_=5)
    b.entry("App.main")
    return b.build()


def _planner(program, loaded=(), costs=PLANNED):
    hierarchy = ClassHierarchy(program)
    for name in loaded:
        hierarchy.mark_loaded(name)
    return DeoptPlanner(program, hierarchy, costs)


class TestPlanSite:
    def test_osr_exit_dimension_forces_cheap_exit(self):
        program = shapes_program()
        planner = _planner(program, costs=PLANNED.replace(
            deopt_strategy="osr-exit"))
        stmt = program.method("App.use").body[0]
        plan = planner.plan_site(
            stmt, (("App.use", 0),), [program.method("Circle.area")],
            coverage=0.0)
        assert plan.strategy == STRATEGY_OSR_EXIT

    def test_guard_free_when_speculation_elides(self):
        # No loaded escape, preexistent receiver: invalidation alone
        # protects every entry, so neither guard nor exit is needed.
        program = shapes_program()
        planner = _planner(program)
        stmt = program.method("App.use").body[0]
        plan = planner.plan_site(
            stmt, (("App.use", 0),), [program.method("Circle.area")])
        assert plan.strategy == STRATEGY_GUARD_FREE

    def test_full_guard_when_fresh_receiver_and_exits_expensive(self):
        # Fresh receiver blocks guard-free; low coverage makes the
        # expected exit premium exceed one guard test; k-CFA cannot
        # prove the site monomorphic (it is unreachable from entry).
        program = shapes_program()
        planner = _planner(program)
        stmt = program.method("App.use_fresh").body[1]
        plan = planner.plan_site(
            stmt, (("App.use_fresh", 1),), [program.method("Circle.area")],
            coverage=0.0)
        assert plan.strategy == STRATEGY_GUARD
        assert not plan.ctx_mono
        assert plan.live == frozenset({1})  # the receiver local maps out

    def test_full_coverage_prefers_cheap_exit(self):
        # Loaded escape blocks guard-free; full profile coverage makes
        # the expected exit cost zero, i.e. cheaper than any guard.
        program = shapes_program()
        planner = _planner(program, loaded=("Circle",))
        stmt = program.method("App.use").body[0]
        circle = program.method("Circle.area")
        low = planner.plan_site(stmt, (("App.use", 0),), [circle],
                                coverage=0.0)
        high = planner.plan_site(stmt, (("App.use", 0),), [circle],
                                 coverage=1.0)
        assert low.strategy == STRATEGY_GUARD
        assert high.strategy == STRATEGY_OSR_EXIT

    def test_context_monomorphic_prefers_cheap_exit(self):
        # Only Circle is ever allocated on the path into App.use, so
        # 1-CFA proves the site monomorphic under the inline chain's
        # call string and exits are predicted never-taken -- cheap-exit
        # wins even at zero coverage with multiple guarded targets.
        b = ProgramBuilder("mono")
        b.cls("Shape")
        b.cls("Circle", superclass="Shape")
        b.cls("Square", superclass="Shape")
        b.cls("App")
        b.method("Shape", "area", [Work(6), Return(Const(0))], params=1)
        b.method("Circle", "area", [Work(6), Return(Const(1))], params=1)
        b.method("Square", "area", [Work(6), Return(Const(2))], params=1)
        b.static_method("App", "use", [
            VirtualCall(0, "area", Arg(0), dst=0), Return(Local(0))
        ], params=1, locals_=2)
        b.static_method("App", "main", [
            New(0, "Circle"),
            StaticCall(10, "App.use", args=(Local(0),), dst=1),
            Return(Local(1)),
        ], locals_=4)
        b.entry("App.main")
        program = b.build()
        planner = _planner(program)
        stmt = program.method("App.use").body[0]
        plan = planner.plan_site(
            stmt, (("App.use", 0), ("App.main", 10)),
            [program.method("Circle.area"), program.method("Square.area")],
            coverage=0.0)
        assert plan.ctx_mono
        assert plan.strategy == STRATEGY_OSR_EXIT

    def test_unknown_strategy_rejected(self):
        program = shapes_program()
        with pytest.raises(ConfigError):
            _planner(program, costs=PLANNED.replace(deopt_strategy="bogus"))


class TestStrategyVocabulary:
    def test_compiler_constants_mirror_analysis_lattice(self):
        # The compiler layer may not import the analysis layer, so it
        # declares its own copies of the strategy strings; they must
        # never drift.
        from repro.compiler.compiled_method import (DEOPT_CHEAP_EXIT,
                                                    DEOPT_FULL_GUARD,
                                                    DEOPT_GUARD_FREE,
                                                    ELIDE_OSR_EXIT)
        assert DEOPT_FULL_GUARD == STRATEGY_GUARD
        assert DEOPT_CHEAP_EXIT == STRATEGY_OSR_EXIT
        assert DEOPT_GUARD_FREE == STRATEGY_GUARD_FREE
        assert ELIDE_OSR_EXIT == "osr-exit"

    def test_cost_model_dimension_vocabulary_is_closed(self):
        assert DEOPT_STRATEGIES == ("guard", "osr-exit", "planned")
        assert DEFAULT_COSTS.deopt_strategy in DEOPT_STRATEGIES


class TestGating:
    def test_deopt_planning_is_off_by_default(self):
        """Deopt planning is opt-in, never ambient: stock runs never
        construct the planner, charge no map-in costs, and keep every
        guard chain exactly as compiled."""
        assert DEFAULT_COSTS.deopt_planning_enabled is False
        assert DEFAULT_COSTS.deopt_strategy == "guard"
        built = build_hashmap(iterations=4000)
        runtime = AdaptiveRuntime(built.program, make_policy("fixed", 2))
        assert runtime.deopt is None
        assert runtime.machine.osr_liveness is None

    def test_disabled_run_matches_golden_byte_for_byte(self):
        costs = DEFAULT_COSTS.replace(deopt_planning_enabled=False)
        built = build_hashmap(iterations=4000)
        recorder = ProvenanceRecorder(label="golden/hashmap/fixed2")
        AdaptiveRuntime(built.program, make_policy("fixed", 2, costs=costs),
                        costs=costs, provenance=recorder).run()
        with open(GOLDEN_PATH) as handle:
            assert recorder.to_jsonl() == handle.read()

    def test_guard_dimension_charges_map_in_only(self):
        # Under the "guard" dimension the planner supplies the OSR
        # map-in liveness index but is never consulted for sites: the
        # clean like-for-like baseline for planned-vs-guard deltas.
        costs = DEFAULT_COSTS.replace(deopt_planning_enabled=True,
                                      deopt_strategy="guard")
        built = build_hashmap(iterations=4000)
        runtime = AdaptiveRuntime(built.program,
                                  make_policy("fixed", 2, costs=costs),
                                  costs=costs)
        assert runtime.deopt is not None
        assert runtime.machine.osr_liveness is not None
        result = runtime.run()
        assert result.deopt_entries == 0 and result.deopt_exits == 0


class TestStrategiesEndToEnd:
    def test_osr_exit_strategy_eliminates_guard_tests(self):
        # mtrt's dispatch sites miss often under guards; the osr-exit
        # strategy trades every guard test for deopt entries/exits.
        program = build_benchmark("mtrt", scale=0.05).program
        results = {}
        for strategy in ("guard", "osr-exit"):
            costs = DEFAULT_COSTS.replace(deopt_planning_enabled=True,
                                          deopt_strategy=strategy)
            results[strategy] = AdaptiveRuntime(
                program, make_policy("cins", costs=costs),
                costs=costs).run()
        guard, exits = results["guard"], results["osr-exit"]
        assert guard.guard_tests > 0 and guard.deopt_entries == 0
        assert exits.guard_tests == 0
        assert exits.deopt_entries > 0
        assert exits.deopt_exits > 0

    def test_planned_strategy_marks_decisions(self):
        from repro.compiler.compiled_method import ELIDE_OSR_EXIT
        costs = DEFAULT_COSTS.replace(deopt_planning_enabled=True,
                                      deopt_strategy="osr-exit")
        program = build_benchmark("mtrt", scale=0.05).program
        runtime = AdaptiveRuntime(program, make_policy("cins", costs=costs),
                                  costs=costs)
        runtime.run()
        exit_options = [
            option
            for compiled in runtime.code_cache.opt_methods()
            for node in compiled.root.walk()
            for decision in node.decisions.values()
            for option in decision.options
            if option.elided == ELIDE_OSR_EXIT
        ]
        assert exit_options


class TestOSRSoundnessReplay:
    def test_replay_clean_with_exits_taken(self):
        # mtrt takes hundreds of deopt exits at this scale: the replay
        # must watch every transition and find the static live sets
        # covering every subsequent read.
        program = build_benchmark("mtrt", scale=0.05).program
        report = check_osr_soundness(program)
        assert report.ok
        assert report.deopt_exits > 0
        assert report.reads_checked > 0
        assert report.violations == ()

    def test_replay_clean_on_loop_transfer(self):
        program = build_benchmark("jess", scale=0.1).program
        report = check_osr_soundness(program)
        assert report.ok
        assert report.osr_transfers > 0

    def test_report_renders(self):
        program = build_benchmark("mtrt", scale=0.05).program
        report = check_osr_soundness(program)
        text = report.render()
        assert "osr soundness" in text
        assert "live sets cover every read" in text
