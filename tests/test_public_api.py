"""Contract tests for the top-level public API surface."""

import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__
                   if not hasattr(repro, name)]
        assert missing == []

    def test_all_is_sorted_unique(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == [], \
            f"public items missing docstrings: {undocumented}"


class TestQuickstartContract:
    """The README's quickstart snippet must keep working verbatim."""

    def test_readme_quickstart(self):
        from repro import AdaptiveRuntime, make_policy
        from repro.workloads import hashmap_example

        built = hashmap_example.build(iterations=500)
        runtime = AdaptiveRuntime(built.program, make_policy("fixed", 2))
        result = runtime.run()
        assert result.opt_code_bytes >= 0
        assert result.total_cycles > 0

    def test_policy_labels_stable(self):
        # Downstream users key on these labels; renaming breaks them.
        # (Additions go at the end: "static"/"static-k" are the
        # no-profile baselines.)
        assert repro.POLICY_LABELS == (
            "cins", "fixed", "paramLess", "class", "large", "hybrid1",
            "hybrid2", "imprecision", "static", "static-k")
