"""Unit tests for the program model (classes, methods, statements)."""

import pytest

from repro.jvm.errors import ProgramError
from repro.jvm.program import (Add, Arg, ClassDef, Const, If, Let, Local,
                               Loop, MethodDef, Mod, Mul, New, NewPool, Pick,
                               Program, Return, StaticCall, Sub, VirtualCall,
                               Work, body_bytecodes)


def method(name="m", klass="C", body=(), params=0, static=True, **kw):
    return MethodDef(klass, name, params, static, body, **kw)


class TestWork:
    def test_cost_recorded(self):
        assert Work(7).cost == 7

    def test_negative_cost_rejected(self):
        with pytest.raises(ProgramError):
            Work(-1)

    def test_zero_cost_allowed(self):
        assert Work(0).cost == 0


class TestBodyBytecodes:
    def test_work_counts_cost(self):
        assert body_bytecodes([Work(9)]) == 9

    def test_lets_and_news_count_one(self):
        assert body_bytecodes([Let(0, Const(1)), New(1, "C"),
                               Return(Const(0))]) == 3

    def test_calls_count_call_units(self):
        from repro.jvm.costs import CALL_UNITS
        assert body_bytecodes([StaticCall(0, "C.m")]) == CALL_UNITS
        assert body_bytecodes(
            [VirtualCall(1, "m", Arg(0))]) == CALL_UNITS

    def test_if_counts_both_branches(self):
        body = [If(Arg(0), [Work(5)], [Work(3)])]
        assert body_bytecodes(body) == 1 + 5 + 3

    def test_loop_counts_body_once(self):
        body = [Loop(Const(100), 0, [Work(5)])]
        assert body_bytecodes(body) == 2 + 5

    def test_newpool_counts_per_entry(self):
        assert body_bytecodes([NewPool(0, ("A", "B", "C"))]) == 4

    def test_nested_structures(self):
        body = [Loop(Const(2), 0, [If(Arg(0), [Work(2)], [])])]
        assert body_bytecodes(body) == 2 + 1 + 2


class TestMethodDef:
    def test_id_combines_class_and_name(self):
        assert method(name="foo", klass="Bar").id == "Bar.foo"

    def test_bytecodes_computed_from_body(self):
        m = method(body=[Work(10), Return(Const(0))])
        assert m.bytecodes == 11

    def test_explicit_bytecodes_override(self):
        m = method(body=[Work(10)], bytecodes=99)
        assert m.bytecodes == 99

    def test_declared_params_static(self):
        assert method(params=3, static=True).declared_params == 3

    def test_declared_params_instance_excludes_receiver(self):
        assert method(params=3, static=False).declared_params == 2

    def test_instance_method_with_only_this_is_parameterless(self):
        assert method(params=1, static=False).is_parameterless

    def test_static_with_params_not_parameterless(self):
        assert not method(params=1, static=True).is_parameterless

    def test_static_no_params_is_parameterless(self):
        assert method(params=0, static=True).is_parameterless


class TestClassDef:
    def test_declare_and_lookup(self):
        cls = ClassDef("C")
        m = method()
        cls.declare(m)
        assert cls.methods["m"] is m

    def test_declare_wrong_class_rejected(self):
        cls = ClassDef("D")
        with pytest.raises(ProgramError):
            cls.declare(method(klass="C"))

    def test_duplicate_method_rejected(self):
        cls = ClassDef("C")
        cls.declare(method())
        with pytest.raises(ProgramError):
            cls.declare(method())


class TestProgramValidation:
    def _program(self):
        p = Program("t")
        c = p.add_class(ClassDef("C"))
        c.declare(method(name="m", body=[Return(Const(0))]))
        return p

    def test_duplicate_class_rejected(self):
        p = self._program()
        with pytest.raises(ProgramError):
            p.add_class(ClassDef("C"))

    def test_unknown_method_lookup(self):
        p = self._program()
        with pytest.raises(ProgramError):
            p.method("C.nope")

    def test_method_lookup(self):
        p = self._program()
        assert p.method("C.m").name == "m"

    def test_unknown_superclass_rejected(self):
        p = self._program()
        p.add_class(ClassDef("D", superclass="Nope"))
        with pytest.raises(ProgramError):
            p.validate()

    def test_inheritance_cycle_rejected(self):
        p = Program("t")
        p.add_class(ClassDef("A", superclass="B"))
        p.add_class(ClassDef("B", superclass="A"))
        with pytest.raises(ProgramError):
            p.validate()

    def test_missing_static_target_rejected(self):
        p = self._program()
        cls = p.classes["C"]
        cls.declare(method(name="bad", body=[StaticCall(0, "C.ghost")]))
        with pytest.raises(ProgramError):
            p.validate()

    def test_unknown_selector_rejected(self):
        p = self._program()
        p.classes["C"].declare(
            method(name="bad", body=[VirtualCall(0, "ghost", Arg(0))],
                   params=1))
        with pytest.raises(ProgramError):
            p.validate()

    def test_duplicate_site_id_rejected(self):
        p = self._program()
        p.classes["C"].declare(method(
            name="a", body=[StaticCall(7, "C.m")]))
        p.classes["C"].declare(method(
            name="b", body=[StaticCall(7, "C.m")]))
        with pytest.raises(ProgramError):
            p.validate()

    def test_same_site_same_location_ok(self):
        # Validation twice must not trip over its own bookkeeping.
        p = self._program()
        p.classes["C"].declare(method(name="a", body=[StaticCall(7, "C.m")]))
        p.validate()
        p.validate()

    def test_unknown_new_class_rejected(self):
        p = self._program()
        p.classes["C"].declare(method(name="bad", body=[New(0, "Ghost")]))
        with pytest.raises(ProgramError):
            p.validate()

    def test_unknown_pool_class_rejected(self):
        p = self._program()
        p.classes["C"].declare(
            method(name="bad", body=[NewPool(0, ("C", "Ghost"))]))
        with pytest.raises(ProgramError):
            p.validate()

    def test_sites_in_nested_blocks_registered(self):
        p = self._program()
        p.classes["C"].declare(method(name="n", params=1, body=[
            Loop(Const(2), 0, [If(Arg(0), [StaticCall(42, "C.m")], [])]),
        ]))
        p.validate()
        assert p.site_location(42) == ("C.n", "static")

    def test_entry_method(self):
        p = self._program()
        p.set_entry("C.m")
        assert p.entry_method().id == "C.m"

    def test_entry_missing(self):
        p = self._program()
        with pytest.raises(ProgramError):
            p.entry_method()

    def test_methods_deterministic_order(self):
        p = self._program()
        p.classes["C"].declare(method(name="a", body=[Return(Const(0))]))
        ids = [m.id for m in p.methods()]
        assert ids == sorted(ids)

    def test_total_bytecodes(self, diamond_program):
        total = sum(m.bytecodes for m in diamond_program.methods())
        assert diamond_program.total_bytecodes() == total


class TestExprRepr:
    """Smoke tests that node reprs stay informative (used in debugging)."""

    def test_reprs(self):
        assert "Const" in repr(Const(3))
        assert "Arg" in repr(Arg(0))
        assert "Local" in repr(Local(1))
        assert "Add" in repr(Add(Const(1), Const(2)))
        assert "Sub" in repr(Sub(Const(1), Const(2)))
        assert "Mul" in repr(Mul(Const(1), Const(2)))
        assert "Mod" in repr(Mod(Const(1), Const(2)))
        assert "Pick" in repr(Pick(Local(0), Arg(0)))
        assert "Work" in repr(Work(1))
        assert "StaticCall" in repr(StaticCall(0, "C.m"))
        assert "VirtualCall" in repr(VirtualCall(0, "m", Arg(0)))
        assert "Loop" in repr(Loop(Const(1), 0, []))
        assert "If" in repr(If(Const(1), []))
        assert "Return" in repr(Return())
        assert "New" in repr(New(0, "C"))
        assert "NewPool" in repr(NewPool(0, ("C",)))
        assert "Let" in repr(Let(0, Const(1)))
