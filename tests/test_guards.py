"""Unit tests for guard synthesis helpers."""

import math

import pytest

from repro.compiler.compiled_method import InlineNode
from repro.compiler.guards import (accept_cache_info, build_guard_options,
                                   classes_for_target, clear_accept_cache,
                                   order_guard_targets)
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import ClassDef, Const, MethodDef, Program, Return


def _program():
    p = Program("g")
    p.add_class(ClassDef("Base"))
    p.add_class(ClassDef("Mid", superclass="Base"))
    p.add_class(ClassDef("Leaf", superclass="Mid"))

    def declare(klass, name):
        method = MethodDef(klass, name, 1, False, [Return(Const(0))])
        p.classes[klass].declare(method)
        return method

    base_ping = declare("Base", "ping")
    mid_ping = declare("Mid", "ping")
    p.validate()
    return p, base_ping, mid_ping


class TestClassesForTarget:
    def test_acceptance_sets_partition_hierarchy(self):
        program, base_ping, mid_ping = _program()
        hierarchy = ClassHierarchy(program)
        base_accepts = classes_for_target(hierarchy, "ping", base_ping)
        mid_accepts = classes_for_target(hierarchy, "ping", mid_ping)
        assert base_accepts == {"Base"}
        assert mid_accepts == {"Mid", "Leaf"}
        assert base_accepts.isdisjoint(mid_accepts)


class TestAcceptanceSetMemoization:
    def test_second_lookup_hits_cache(self):
        program, base_ping, _mid = _program()
        hierarchy = ClassHierarchy(program)
        clear_accept_cache()
        first = classes_for_target(hierarchy, "ping", base_ping)
        info = accept_cache_info()
        assert info == {"hits": 0, "misses": 1, "size": 1}
        second = classes_for_target(hierarchy, "ping", base_ping)
        assert second == first
        assert accept_cache_info()["hits"] == 1

    def test_cached_set_is_a_private_copy(self):
        program, base_ping, _mid = _program()
        hierarchy = ClassHierarchy(program)
        clear_accept_cache()
        classes_for_target(hierarchy, "ping", base_ping).add("Poison")
        assert classes_for_target(hierarchy, "ping", base_ping) == {"Base"}

    def test_class_load_invalidates_via_generation(self):
        program, base_ping, _mid = _program()
        hierarchy = ClassHierarchy(program)
        clear_accept_cache()
        classes_for_target(hierarchy, "ping", base_ping)
        hierarchy.mark_loaded("Leaf")  # bumps the load generation
        classes_for_target(hierarchy, "ping", base_ping)
        info = accept_cache_info()
        assert info["misses"] == 2 and info["hits"] == 0


class TestOrdering:
    def _m(self, name):
        return MethodDef("C", name, 1, False, [Return(Const(0))])

    def test_hottest_first(self):
        a, b = self._m("a"), self._m("b")
        ordered = order_guard_targets([(a, 1.0), (b, 9.0)])
        assert [m.name for m in ordered] == ["b", "a"]

    def test_ties_broken_by_id(self):
        a, b = self._m("a"), self._m("b")
        ordered = order_guard_targets([(b, 5.0), (a, 5.0)])
        assert [m.name for m in ordered] == ["a", "b"]

    def test_tie_order_independent_of_input_position(self):
        a, b, c = self._m("a"), self._m("b"), self._m("c")
        forward = order_guard_targets([(a, 5.0), (b, 5.0), (c, 5.0)])
        backward = order_guard_targets([(c, 5.0), (b, 5.0), (a, 5.0)])
        assert [m.id for m in forward] == [m.id for m in backward]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf")])
    def test_non_finite_weights_rejected(self, bad):
        a, b = self._m("a"), self._m("b")
        with pytest.raises(ValueError, match="non-finite"):
            order_guard_targets([(a, 1.0), (b, bad)])

    def test_finite_weights_pass_validation(self):
        a = self._m("a")
        assert math.isfinite(1e300)
        assert order_guard_targets([(a, 1e300)]) == [a]


class TestBuildOptions:
    def _m(self, name):
        return MethodDef("C", name, 1, False, [Return(Const(0))])

    def test_pairs_targets_with_nodes(self):
        a, b = self._m("a"), self._m("b")
        nodes = [InlineNode(a, 1), InlineNode(b, 1)]
        options = build_guard_options([a, b], nodes)
        assert [o.target.name for o in options] == ["a", "b"]
        assert all(o.guard_class == "C" for o in options)

    def test_misaligned_rejected(self):
        a = self._m("a")
        with pytest.raises(ValueError):
            build_guard_options([a], [])
