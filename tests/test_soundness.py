"""Tests for dynamic soundness checking and static flip attribution."""

import pytest

from repro.analysis.callgraph import CHA, build_call_graph
from repro.analysis.soundness import (ATTR_PROFILE_DECIDED,
                                      ATTR_STATIC_DECIDED, ATTR_UNKNOWN_SITE,
                                      attribute_flips, check_containment,
                                      check_soundness,
                                      observe_dispatch_edges,
                                      render_attribution)
from repro.aos.runtime import AdaptiveRuntime
from repro.policies import make_policy
from repro.provenance.diff import FLIP_VERDICT, DecisionDiff, Flip
from repro.provenance.records import DecisionRecord


class TestObserver:
    def test_records_dispatch_edges(self, diamond):
        program, sites = diamond
        observed = observe_dispatch_edges(program)
        assert observed[sites["ping_a"]] == frozenset({"A.ping"})
        assert observed[sites["ping_b"]] == frozenset({"B.ping"})
        # Static calls never reach the dispatch observer.
        assert sites["loop"] not in observed

    def test_observer_is_zero_overhead(self, diamond):
        program, _sites = diamond
        baseline = AdaptiveRuntime(program, make_policy("cins")).run()
        runtime = AdaptiveRuntime(program, make_policy("cins"))
        runtime.machine.dispatch_observer = lambda site, target: None
        observed = runtime.run()
        assert observed.total_cycles == baseline.total_cycles
        assert observed.opt_code_bytes == baseline.opt_code_bytes


class TestContainment:
    def test_diamond_is_sound(self, diamond):
        program, _sites = diamond
        report = check_soundness(program)
        assert report.ok
        assert report.precision == CHA
        assert report.sites_observed >= 2
        assert "contained" in report.render()

    def test_foreign_edge_is_a_violation(self, diamond):
        program, sites = diamond
        graph = build_call_graph(program, precision=CHA)
        doctored = {sites["ping_a"]: frozenset({"Ghost.ping"})}
        report = check_containment(graph, doctored)
        assert not report.ok
        (violation,) = report.violations
        assert violation.observed == "Ghost.ping"
        assert "A.ping" in violation.allowed
        assert "VIOLATION" in report.render()
        assert "Ghost.ping" in violation.describe()

    def test_unknown_site_reported_with_empty_allowed(self, diamond):
        program, _sites = diamond
        graph = build_call_graph(program, precision=CHA)
        report = check_containment(graph, {999: frozenset({"A.ping"})})
        assert not report.ok
        assert report.violations[0].caller == "<unknown>"
        assert report.violations[0].allowed == ()

    @pytest.mark.parametrize("name", ["compress", "db", "mtrt"])
    def test_benchmarks_are_sound(self, name):
        from repro.workloads.spec import build_benchmark
        program = build_benchmark(name, scale=0.05).program
        report = check_soundness(program)
        assert report.ok, report.render()


def _record(caller, site, context, verdict="direct", reason="tiny"):
    return DecisionRecord(
        clock=0.0, root=caller, version=1, caller=caller, site=site,
        depth=0, site_kind="virtual", selector="ping", verdict=verdict,
        reason=reason, context=context)


def _flip(caller, site):
    context = ((caller, site),)
    return Flip(key=(caller, site, context), kind=FLIP_VERDICT,
                a=_record(caller, site, context),
                b=_record(caller, site, context, verdict="refused",
                          reason="static-poly"))


class TestAttribution:
    def test_flips_bucketed_by_static_knowledge(self, diamond):
        program, sites = diamond
        graph = build_call_graph(program, precision=CHA)
        diff = DecisionDiff(flips=[
            _flip("Main.run", sites["ping_a"]),   # CHA-polymorphic
            _flip("Main.main", sites["loop"]),    # static call, bound
            _flip("Main.run", 424242),            # not in the graph
        ])
        buckets = attribute_flips(diff, graph)
        assert [f.key[1] for f in buckets[ATTR_PROFILE_DECIDED]] == \
            [sites["ping_a"]]
        assert [f.key[1] for f in buckets[ATTR_STATIC_DECIDED]] == \
            [sites["loop"]]
        assert [f.key[1] for f in buckets[ATTR_UNKNOWN_SITE]] == [424242]

    def test_render_attribution_mentions_each_bucket(self, diamond):
        program, sites = diamond
        graph = build_call_graph(program, precision=CHA)
        diff = DecisionDiff(flips=[_flip("Main.run", sites["ping_a"])])
        text = render_attribution(attribute_flips(diff, graph), graph)
        assert "1 flip(s)" in text
        assert "static-vs-profile disagreement" in text

    def test_render_attribution_respects_limit(self, diamond):
        program, sites = diamond
        graph = build_call_graph(program, precision=CHA)
        flips = [_flip("Main.run", sites["ping_a"]) for _ in range(5)]
        text = render_attribution(
            attribute_flips(DecisionDiff(flips=flips), graph), graph,
            limit=2)
        assert "... and 3 more" in text
