"""Tests for dynamic soundness checking and static flip attribution."""

import pytest

from repro.analysis.callgraph import CHA, build_call_graph
from repro.analysis.kcfa import build_kcfa_graph
from repro.analysis.soundness import (ATTR_PROFILE_DECIDED,
                                      ATTR_STATIC_DECIDED, ATTR_UNKNOWN_SITE,
                                      attribute_flips,
                                      check_containment,
                                      check_context_containment,
                                      check_lattice_soundness,
                                      check_soundness,
                                      flatten_context_edges,
                                      observe_context_edges,
                                      observe_dispatch_edges,
                                      render_attribution,
                                      truncate_context_edges)
from repro.aos.runtime import AdaptiveRuntime
from repro.policies import make_policy
from repro.provenance.diff import FLIP_VERDICT, DecisionDiff, Flip
from repro.provenance.records import DecisionRecord


class TestObserver:
    def test_records_dispatch_edges(self, diamond):
        program, sites = diamond
        observed = observe_dispatch_edges(program)
        assert observed[sites["ping_a"]] == frozenset({"A.ping"})
        assert observed[sites["ping_b"]] == frozenset({"B.ping"})
        # Static calls never reach the dispatch observer.
        assert sites["loop"] not in observed

    def test_observer_is_zero_overhead(self, diamond):
        program, _sites = diamond
        baseline = AdaptiveRuntime(program, make_policy("cins")).run()
        runtime = AdaptiveRuntime(program, make_policy("cins"))
        runtime.machine.dispatch_observer = lambda site, target: None
        observed = runtime.run()
        assert observed.total_cycles == baseline.total_cycles
        assert observed.opt_code_bytes == baseline.opt_code_bytes


class TestContainment:
    def test_diamond_is_sound(self, diamond):
        program, _sites = diamond
        report = check_soundness(program)
        assert report.ok
        assert report.precision == CHA
        assert report.sites_observed >= 2
        assert "contained" in report.render()

    def test_foreign_edge_is_a_violation(self, diamond):
        program, sites = diamond
        graph = build_call_graph(program, precision=CHA)
        doctored = {sites["ping_a"]: frozenset({"Ghost.ping"})}
        report = check_containment(graph, doctored)
        assert not report.ok
        (violation,) = report.violations
        assert violation.observed == "Ghost.ping"
        assert "A.ping" in violation.allowed
        assert "VIOLATION" in report.render()
        assert "Ghost.ping" in violation.describe()

    def test_unknown_site_reported_with_empty_allowed(self, diamond):
        program, _sites = diamond
        graph = build_call_graph(program, precision=CHA)
        report = check_containment(graph, {999: frozenset({"A.ping"})})
        assert not report.ok
        assert report.violations[0].caller == "<unknown>"
        assert report.violations[0].allowed == ()

    @pytest.mark.parametrize("name", ["compress", "db", "mtrt"])
    def test_benchmarks_are_sound(self, name):
        from repro.workloads.spec import build_benchmark
        program = build_benchmark(name, scale=0.05).program
        report = check_soundness(program)
        assert report.ok, report.render()


class TestContextObserver:
    def test_edges_qualified_by_dynamic_call_string(self, ctxprog):
        program, sites = ctxprog
        edges = observe_context_edges(program, k=2)
        key_a = (sites["disp"], (sites["c1"], sites["call1"]))
        key_b = (sites["disp"], (sites["c2"], sites["call2"]))
        assert edges[key_a] == {"A.ping": 10}
        assert edges[key_b] == {"B.ping": 10}

    def test_truncate_merges_counts(self, ctxprog):
        program, sites = ctxprog
        edges = observe_context_edges(program, k=2)
        flat = truncate_context_edges(edges, 0)
        assert flat[(sites["disp"], ())] == {"A.ping": 10, "B.ping": 10}

    def test_flatten_drops_contexts(self, ctxprog):
        program, sites = ctxprog
        edges = observe_context_edges(program, k=2)
        assert flatten_context_edges(edges)[sites["disp"]] == \
            frozenset({"A.ping", "B.ping"})


class TestLatticeSoundness:
    def test_chain_contained_at_every_tier(self, ctxprog):
        program, _sites = ctxprog
        report = check_lattice_soundness(program)
        assert report.ok
        assert [s.precision for s in report.sections] == \
            ["cha", "rta", "0cfa", "1cfa", "2cfa"]
        assert report.violation_codes() == ()
        assert "contained at every tier" in report.render()

    def test_context_violation_names_tier_and_context(self, ctxprog):
        program, sites = ctxprog
        kgraph = build_kcfa_graph(program, k=1)
        # Doctored CCT: under the c1 chain only A.ping is allowed.
        doctored = {(sites["disp"], (sites["c1"],)): {"B.ping": 3}}
        report = check_context_containment(kgraph, doctored)
        assert not report.ok
        (violation,) = report.violations
        assert violation.code == "unsound-1cfa"
        assert violation.context == (sites["c1"],)
        assert violation.observed == "B.ping"
        assert "ctx=" in violation.describe()

    def test_reused_edges_match_fresh_replay(self, ctxprog):
        program, _sites = ctxprog
        edges = observe_context_edges(program, k=2)
        fresh = check_lattice_soundness(program)
        reused = check_lattice_soundness(program, edges=edges)
        assert reused.ok == fresh.ok
        assert [s.edges_observed for s in reused.sections] == \
            [s.edges_observed for s in fresh.sections]

    @pytest.mark.parametrize("name", ["jess", "db"])
    def test_benchmarks_lattice_sound(self, name):
        from repro.workloads.spec import build_benchmark
        program = build_benchmark(name, scale=0.05).program
        report = check_lattice_soundness(program)
        assert report.ok, report.render()


def _record(caller, site, context, verdict="direct", reason="tiny"):
    return DecisionRecord(
        clock=0.0, root=caller, version=1, caller=caller, site=site,
        depth=0, site_kind="virtual", selector="ping", verdict=verdict,
        reason=reason, context=context)


def _flip(caller, site):
    context = ((caller, site),)
    return Flip(key=(caller, site, context), kind=FLIP_VERDICT,
                a=_record(caller, site, context),
                b=_record(caller, site, context, verdict="refused",
                          reason="static-poly"))


class TestAttribution:
    def test_flips_bucketed_by_static_knowledge(self, diamond):
        program, sites = diamond
        graph = build_call_graph(program, precision=CHA)
        diff = DecisionDiff(flips=[
            _flip("Main.run", sites["ping_a"]),   # CHA-polymorphic
            _flip("Main.main", sites["loop"]),    # static call, bound
            _flip("Main.run", 424242),            # not in the graph
        ])
        buckets = attribute_flips(diff, graph)
        assert [f.key[1] for f in buckets[ATTR_PROFILE_DECIDED]] == \
            [sites["ping_a"]]
        assert [f.key[1] for f in buckets[ATTR_STATIC_DECIDED]] == \
            [sites["loop"]]
        assert [f.key[1] for f in buckets[ATTR_UNKNOWN_SITE]] == [424242]

    def test_render_attribution_mentions_each_bucket(self, diamond):
        program, sites = diamond
        graph = build_call_graph(program, precision=CHA)
        diff = DecisionDiff(flips=[_flip("Main.run", sites["ping_a"])])
        text = render_attribution(attribute_flips(diff, graph), graph)
        assert "1 flip(s)" in text
        assert "static-vs-profile disagreement" in text

    def test_render_attribution_respects_limit(self, diamond):
        program, sites = diamond
        graph = build_call_graph(program, precision=CHA)
        flips = [_flip("Main.run", sites["ping_a"]) for _ in range(5)]
        text = render_attribution(
            attribute_flips(DecisionDiff(flips=flips), graph), graph,
            limit=2)
        assert "... and 3 more" in text
