"""Execution of *optimized* code: inline plans, guards, and discounts.

These tests install hand-built CompiledMethods into the code cache and
verify the interpreter follows the inline tree exactly: direct inlines
skip call overhead, guard hits enter the right body, guard misses fall
back to virtual dispatch, and the source-level stack still shows inlined
activations.
"""

import pytest

from repro.aos.cost_accounting import APP, CostAccounting
from repro.compiler.code_cache import CodeCache
from repro.compiler.compiled_method import (CompiledMethod, DIRECT, GUARDED,
                                            GuardOption, InlineDecision,
                                            InlineNode)
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.interpreter import Machine
from repro.jvm.program import (Arg, Const, Local, New, Return, StaticCall,
                               VirtualCall, Work)
from repro.workloads.builder import ProgramBuilder


def build_program():
    b = ProgramBuilder("opt")
    b.cls("Base")
    b.cls("A", superclass="Base")
    b.cls("B", superclass="Base")
    b.cls("C", superclass="Base")
    b.cls("Main")

    b.method("A", "ping", [Work(10), Return(Const(1))], params=1)
    b.method("B", "ping", [Work(10), Return(Const(2))], params=1)
    b.method("C", "ping", [Work(10), Return(Const(3))], params=1)
    b.static_method("Main", "leaf", [Work(10), Return(Const(9))])

    b.static_method("Main", "runner", [
        StaticCall(100, "Main.leaf", dst=0),
        VirtualCall(101, "ping", Arg(0), dst=1),
        Return(Local(1)),
    ], params=1, locals_=4)

    b.static_method("Main", "main", [
        New(0, "A"),
        StaticCall(102, "Main.runner", [Local(0)], dst=1),
        Return(Local(1)),
    ], locals_=4)
    b.entry("Main.main")
    return b.build()


def machine_with_plan(program, guard_targets):
    """Install an opt version of Main.runner with a given inline plan."""
    costs = CostModel()
    hierarchy = ClassHierarchy(program)
    cache = CodeCache(costs)

    runner = program.method("Main.runner")
    leaf = program.method("Main.leaf")
    root = InlineNode(runner, 0)
    root.decisions[100] = InlineDecision(
        DIRECT, [GuardOption(leaf, InlineNode(leaf, 1))])
    options = [GuardOption(program.method(f"{klass}.ping"),
                           InlineNode(program.method(f"{klass}.ping"), 1),
                           guard_class=klass)
               for klass in guard_targets]
    if options:
        root.decisions[101] = InlineDecision(GUARDED, options)
    cache.install(CompiledMethod(root, 60, 360, 840, 1))

    machine = Machine(program, hierarchy, cache, costs, CostAccounting())
    return machine, costs


class TestDirectInline:
    def test_inlined_static_call_skips_overhead(self):
        program = build_program()
        machine, costs = machine_with_plan(program, ["A"])
        value = machine.run()
        assert value == 1
        # leaf executed inline: one inline entry, no out-of-line leaf call.
        assert machine.stats.inline_entries >= 1

    def test_result_identical_to_baseline(self):
        program = build_program()
        opt_machine, _ = machine_with_plan(program, ["A"])
        baseline_machine, _ = machine_with_plan(program, [])
        assert opt_machine.run() == baseline_machine.run()


class TestGuards:
    def test_guard_hit_enters_inline_body(self):
        program = build_program()
        machine, _ = machine_with_plan(program, ["A"])
        assert machine.run() == 1
        assert machine.stats.guard_tests == 1
        assert machine.stats.guard_misses == 0
        assert machine.stats.dispatches == 0

    def test_guard_miss_falls_back_to_dispatch(self):
        program = build_program()
        machine, _ = machine_with_plan(program, ["B"])  # wrong target
        assert machine.run() == 1  # still correct via fallback
        assert machine.stats.guard_misses == 1
        assert machine.stats.dispatches == 1

    def test_second_guard_hits_after_first_misses(self):
        program = build_program()
        machine, _ = machine_with_plan(program, ["B", "A"])
        assert machine.run() == 1
        assert machine.stats.guard_tests == 2
        assert machine.stats.guard_misses == 0

    def test_guard_costs_charged(self):
        program = build_program()
        hit, costs = machine_with_plan(program, ["A"])
        hit.run()
        miss, _ = machine_with_plan(program, ["B"])
        miss.run()
        # The miss run pays the guard plus the full dispatch.
        assert miss.accounting.cycles[APP] > hit.accounting.cycles[APP]


class TestInlineDiscount:
    def test_inlined_work_cheaper_than_out_of_line(self):
        program = build_program()
        inlined, costs = machine_with_plan(program, ["A"])
        inlined.run()
        plain, _ = machine_with_plan(program, [])
        plain.run()
        assert inlined.accounting.cycles[APP] < plain.accounting.cycles[APP]
